//! Property-based tests for the autodiff engine: gradient correctness on
//! randomly composed graphs, broadcast semantics, and optimiser behaviour.

use inbox_autodiff::{Adam, GradStore, ParamStore, Sgd, Tape, Tensor};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

/// Central-difference gradient check for a scalar function of one parameter.
fn check_grad(
    store: &mut ParamStore,
    id: inbox_autodiff::ParamId,
    f: impl Fn(&mut Tape, &ParamStore) -> inbox_autodiff::Var,
) -> Result<(), TestCaseError> {
    let mut tape = Tape::new();
    let out = f(&mut tape, store);
    let grads = tape.backward(out);
    let (rows, cols) = store.value(id).shape();
    let eps = 1e-2f32;
    for r in 0..rows {
        for c in 0..cols {
            let orig = store.value(id).at(r, c);
            *store.value_mut(id).at_mut(r, c) = orig + eps;
            let mut t1 = Tape::new();
            let o1 = f(&mut t1, store);
            let hi = t1.value(o1).item();
            *store.value_mut(id).at_mut(r, c) = orig - eps;
            let mut t2 = Tape::new();
            let o2 = f(&mut t2, store);
            let lo = t2.value(o2).item();
            *store.value_mut(id).at_mut(r, c) = orig;
            let numeric = (hi - lo) / (2.0 * eps);
            let analytic = grads
                .dense(id)
                .map(|t| t.at(r, c))
                .or_else(|| {
                    grads
                        .sparse(id)
                        .and_then(|m| m.get(r as u32))
                        .map(|row| row[c])
                })
                .unwrap_or(0.0);
            let denom = numeric.abs().max(analytic.abs()).max(1.0);
            prop_assert!(
                (numeric - analytic).abs() / denom < 0.08,
                "grad mismatch at ({r},{c}): numeric {numeric}, analytic {analytic}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A randomly weighted smooth composite: relu(xW)·sigmoid(x) summed.
    /// (Smooth enough for finite differences away from kinks with high
    /// probability.)
    #[test]
    fn composite_graph_gradients(x in tensor_strategy(3, 4), w in tensor_strategy(4, 4)) {
        let mut store = ParamStore::new();
        let xid = store.add("x", x);
        store.add("w", w);
        check_grad(&mut store, xid, |t, s| {
            let x = t.param(s, s.id("x").unwrap());
            let w = t.param(s, s.id("w").unwrap());
            let xw = t.matmul(x, w);
            let a = t.tanh(xw);
            let b = t.sigmoid(x);
            // shapes: a 3x4, b 3x4
            let prod = t.mul(a, b);
            t.sum_all(prod)
        })?;
    }

    /// Broadcast add/mul gradients for the 1-row operand reduce over rows.
    #[test]
    fn broadcast_row_gradients(x in tensor_strategy(4, 3), row in tensor_strategy(1, 3)) {
        let mut store = ParamStore::new();
        store.add("x", x);
        let rid = store.add("row", row);
        check_grad(&mut store, rid, |t, s| {
            let x = t.param(s, s.id("x").unwrap());
            let r = t.param(s, s.id("row").unwrap());
            let a = t.add(x, r);
            let m = t.mul(a, r);
            t.sum_all(m)
        })?;
    }

    /// Forward pass of softmax_axis0: every column sums to one and entries
    /// lie in (0, 1], even with extreme inputs.
    #[test]
    fn softmax_columns_normalised(v in prop::collection::vec(-60.0f32..60.0, 12)) {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(4, 3, v));
        let s = tape.softmax_axis0(x);
        let out = tape.value(s);
        for c in 0..3 {
            let col: f32 = (0..4).map(|r| out.at(r, c)).sum();
            prop_assert!((col - 1.0).abs() < 1e-5);
            for r in 0..4 {
                let p = out.at(r, c);
                // p may underflow to exactly 0 for ~100-unit gaps in f32.
                prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
            }
        }
    }

    /// Gather forward returns exactly the selected rows; repeated indices
    /// accumulate gradient proportionally to multiplicity.
    #[test]
    fn gather_rows_and_grad_multiplicity(emb in tensor_strategy(6, 3), idx in prop::collection::vec(0u32..6, 1..8)) {
        let mut store = ParamStore::new();
        let id = store.add("emb", emb.clone());
        let mut tape = Tape::new();
        let g = tape.gather(&store, id, &idx);
        for (r, &i) in idx.iter().enumerate() {
            prop_assert_eq!(tape.value(g).row_slice(r), emb.row_slice(i as usize));
        }
        let out = tape.sum_all(g);
        let grads = tape.backward(out);
        let sparse = grads.sparse(id).unwrap();
        for &i in &idx {
            let mult = idx.iter().filter(|&&j| j == i).count() as f32;
            prop_assert!(sparse.get(i).unwrap().iter().all(|&v| (v - mult).abs() < 1e-5));
        }
    }

    /// SGD with the analytic gradient reduces a convex quadratic.
    #[test]
    fn sgd_descends_quadratic(start in -3.0f32..3.0, target in -3.0f32..3.0) {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(start));
        let sgd = Sgd { lr: 0.1 };
        let loss_at = |store: &ParamStore| {
            let w = store.value(id).item();
            (w - target) * (w - target)
        };
        let before = loss_at(&store);
        for _ in 0..100 {
            let w = store.value(id).item();
            let mut g = GradStore::new();
            g.add_dense(id, &Tensor::scalar(2.0 * (w - target)));
            sgd.step(&mut store, &g);
        }
        let after = loss_at(&store);
        prop_assert!(after <= before + 1e-6);
        prop_assert!((store.value(id).item() - target).abs() < 1e-2);
    }

    /// Adam converges to the minimum of |w - target| + 0.5 (w - target)^2
    /// from any start, and parameters stay finite throughout.
    #[test]
    fn adam_converges_from_any_start(start in -5.0f32..5.0, target in -2.0f32..2.0) {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(start));
        let adam = Adam::with_lr(0.05);
        for _ in 0..800 {
            let w = store.value(id).item();
            let g = (w - target).signum() + (w - target);
            let mut gs = GradStore::new();
            gs.add_dense(id, &Tensor::scalar(g));
            adam.step(&mut store, &gs);
            prop_assert!(store.value(id).item().is_finite());
        }
        prop_assert!((store.value(id).item() - target).abs() < 0.1);
    }

    /// min/max axis reductions bound each other and match std computations.
    #[test]
    fn axis_reductions_match_reference(v in prop::collection::vec(-9.0f32..9.0, 12)) {
        let t = Tensor::from_vec(4, 3, v.clone());
        let mut tape = Tape::new();
        let x = tape.constant(t);
        let mn = tape.min_axis0(x);
        let sum = tape.sum_axis0(x);
        let mean = tape.mean_axis0(x);
        for c in 0..3 {
            let col: Vec<f32> = (0..4).map(|r| v[r * 3 + c]).collect();
            let min_ref = col.iter().cloned().fold(f32::MAX, f32::min);
            let sum_ref: f32 = col.iter().sum();
            prop_assert!((tape.value(mn).at(0, c) - min_ref).abs() < 1e-5);
            prop_assert!((tape.value(sum).at(0, c) - sum_ref).abs() < 1e-4);
            prop_assert!((tape.value(mean).at(0, c) - sum_ref / 4.0).abs() < 1e-4);
        }
    }
}

/// Bit patterns of a float slice, for exact equality assertions.
fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fused `linear` op is bit-identical to the matmul +
    /// broadcast-add chain it replaced — forward values *and* gradients —
    /// for arbitrary small shapes.
    #[test]
    fn fused_linear_matches_unfused_chain_bitwise(
        rows in 1..4usize, inner in 1..4usize, cols in 1..4usize,
        xs in prop::collection::vec(-2.0f32..2.0, 16),
        ws in prop::collection::vec(-2.0f32..2.0, 16),
        bs in prop::collection::vec(-2.0f32..2.0, 4),
    ) {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::from_vec(rows, inner, xs[..rows * inner].to_vec()));
        let w = store.add("w", Tensor::from_vec(inner, cols, ws[..inner * cols].to_vec()));
        let b = store.add("b", Tensor::from_vec(1, cols, bs[..cols].to_vec()));
        let run = |fused: bool| {
            let mut tape = Tape::new();
            let xv = tape.param(&store, x);
            let wv = tape.param(&store, w);
            let bv = tape.param(&store, b);
            let out = if fused {
                tape.linear(xv, wv, bv)
            } else {
                let mm = tape.matmul(xv, wv);
                tape.add(mm, bv)
            };
            let value = tape.value(out).data().to_vec();
            let s = tape.sum_all(out);
            let grads = tape.backward(s);
            let collected: Vec<Vec<f32>> = [x, w, b]
                .iter()
                .map(|&id| grads.dense(id).map(|t| t.data().to_vec()).unwrap_or_default())
                .collect();
            (value, collected)
        };
        let (fused_v, fused_g) = run(true);
        let (chain_v, chain_g) = run(false);
        prop_assert_eq!(bits(&fused_v), bits(&chain_v), "forward value bits");
        for (i, (f, c)) in fused_g.iter().zip(&chain_g).enumerate() {
            prop_assert_eq!(bits(f), bits(c), "gradient bits of param {}", i);
        }
    }

    /// The fused `l1_rows` op matches the sub → abs → sum_axis1 chain,
    /// with and without row broadcast of the second operand. Gradients are
    /// bit-identical (elementwise sign propagation); forward values agree
    /// up to reassociation because the fused op sums in the lane-striped
    /// order (see the `simd` module) while the chain sums sequentially —
    /// the fused value's bit-exactness is pinned by the testkit oracles.
    #[test]
    fn fused_l1_rows_matches_unfused_chain_bitwise(
        rows in 1..5usize, cols in 1..5usize, broadcast in 0..2usize,
        xs in prop::collection::vec(-2.0f32..2.0, 16),
        ys in prop::collection::vec(-2.0f32..2.0, 16),
    ) {
        let b_rows = if broadcast == 1 { 1 } else { rows };
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::from_vec(rows, cols, xs[..rows * cols].to_vec()));
        let y = store.add("y", Tensor::from_vec(b_rows, cols, ys[..b_rows * cols].to_vec()));
        let run = |fused: bool| {
            let mut tape = Tape::new();
            let xv = tape.param(&store, x);
            let yv = tape.param(&store, y);
            let out = if fused {
                tape.l1_rows(xv, yv)
            } else {
                let d = tape.sub(xv, yv);
                let a = tape.abs(d);
                tape.sum_axis1(a)
            };
            let value = tape.value(out).data().to_vec();
            let s = tape.sum_all(out);
            let grads = tape.backward(s);
            let collected: Vec<Vec<f32>> = [x, y]
                .iter()
                .map(|&id| grads.dense(id).map(|t| t.data().to_vec()).unwrap_or_default())
                .collect();
            (value, collected)
        };
        let (fused_v, fused_g) = run(true);
        let (chain_v, chain_g) = run(false);
        for (f, c) in fused_v.iter().zip(&chain_v) {
            prop_assert!(
                (f - c).abs() <= 1e-5 * (1.0 + c.abs()),
                "forward value {} vs {}", f, c
            );
        }
        for (i, (f, c)) in fused_g.iter().zip(&chain_g).enumerate() {
            prop_assert_eq!(bits(f), bits(c), "gradient bits of param {}", i);
        }
    }

    /// Central-difference gradient check for the fused `d_pb_rows`
    /// box-distance op on generated kink-free inputs: each point dimension
    /// is placed strictly inside the box (away from the center and the
    /// faces) or strictly outside (away from the faces), so the op is
    /// locally smooth around the probe.
    #[test]
    fn fused_d_pb_rows_gradcheck_off_kinks(
        cen in prop::collection::vec(-1.0f32..1.0, 3),
        off in prop::collection::vec(0.4f32..1.2, 3),
        us in prop::collection::vec(0.25f32..0.75, 3),
        quadrant in prop::collection::vec(0..4usize, 3),
        iw in 0.1f32..0.9,
    ) {
        let point: Vec<f32> = (0..3)
            .map(|k| match quadrant[k] {
                0 => cen[k] + us[k] * off[k],
                1 => cen[k] - us[k] * off[k],
                2 => cen[k] + off[k] + 0.3 + us[k],
                _ => cen[k] - off[k] - 0.3 - us[k],
            })
            .collect();
        let mut store = ParamStore::new();
        let cid = store.add("cen", Tensor::from_vec(1, 3, cen));
        check_grad(&mut store, cid, |tape, store| {
            let p = tape.constant(Tensor::from_vec(1, 3, point.clone()));
            let c = tape.param(store, cid);
            let o = tape.constant(Tensor::from_vec(1, 3, off.clone()));
            let d = tape.d_pb_rows(p, c, o, iw);
            tape.sum_all(d)
        })?;
    }
}
