//! `inbox-autodiff` — a minimal, dependency-light tensor + reverse-mode
//! autodiff engine built as the training substrate for the InBox
//! reproduction (VLDB 2024).
//!
//! The paper trains InBox in PyTorch on a GPU; this crate replaces that stack
//! with a from-scratch CPU implementation providing exactly the operations
//! the model needs:
//!
//! * [`Tensor`] — dense row-major 2-D `f32` matrices,
//! * [`Tape`] / [`Var`] — recorded computation graphs with reverse-mode
//!   differentiation (`Tape::backward`),
//! * [`ParamStore`] / [`GradStore`] — named parameters with dense *and*
//!   sparse (embedding-row) gradients, mergeable across worker threads,
//! * [`Adam`] — the optimiser used in the paper, with lazy per-row moment
//!   updates so large embedding tables stay cheap to train.
//!
//! # Example
//!
//! ```
//! use inbox_autodiff::{Adam, ParamStore, Tape, Tensor};
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::scalar(0.0));
//! let adam = Adam::with_lr(0.05);
//! // Minimise (w - 3)^2.
//! for _ in 0..300 {
//!     let mut tape = Tape::new();
//!     let wv = tape.param(&store, w);
//!     let c = tape.constant(Tensor::scalar(3.0));
//!     let d = tape.sub(wv, c);
//!     let sq = tape.square(d);
//!     let loss = tape.sum_all(sq);
//!     let grads = tape.backward(loss);
//!     adam.step(&mut store, &grads);
//! }
//! assert!((store.value(w).item() - 3.0).abs() < 0.05);
//! ```

#![warn(missing_docs)]

mod params;
pub mod simd;
mod tape;
mod tensor;

pub use params::{Adam, GradStore, ParamId, ParamStore, Sgd, SparseRows};
pub use tape::{log_sigmoid_f, sigmoid_f, Tape, Var};
pub use tensor::Tensor;
