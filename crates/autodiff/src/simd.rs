//! Explicit 8-lane f32 SIMD for the distance/score hot loops, with a
//! portable fallback that is **bit-identical** by construction.
//!
//! # The lane-striped reduction-order contract
//!
//! f32 addition is not associative, so "SIMD but bit-identical to the old
//! sequential sum" is impossible. Instead the workspace defines one
//! reduction order — *lane striping* — and every implementation (SSE2,
//! portable, and the testkit's independently written scalar oracles)
//! commits to it:
//!
//! * A row of `d` elements is processed in chunks of 8. Lane `j` of the
//!   accumulator sums elements `8c + j` for `c = 0, 1, …` — eight
//!   independent sequential sums.
//! * A remainder of `r = d % 8` elements lands in lanes `0..r`; lanes
//!   `r..8` receive `+0.0`. Every per-dimension term produced by these
//!   kernels is `≥ +0.0` (relu/abs outputs, and non-negative products of
//!   them), and the accumulators start at `+0.0`, so adding `+0.0` is a
//!   bit-exact identity — remainder handling is equivalent to
//!   zero-padding the inputs to a multiple of 8.
//! * The horizontal sum is the fixed pairwise tree
//!   `b = [a0+a4, a1+a5, a2+a6, a3+a7]`, `c = [b0+b2, b1+b3]`,
//!   `sum = c0 + c1` — exactly what two SSE `addps` halves followed by
//!   `movhl`/`shuffle` reductions compute.
//!
//! # min/max selection semantics
//!
//! Rust's `f32::max` lowers to `llvm.maxnum`, whose `±0.0` behaviour is
//! unspecified and differs from SSE's `maxps`. The kernels therefore use
//! *select-based* comparisons matching the SSE instructions exactly:
//! [`pmax`]`(a, b) = if a > b { a } else { b }` (`maxps`) and
//! [`pmin`]`(a, b) = if a < b { a } else { b }` (`minps`) — the second
//! operand wins on equality or unordered inputs. `relu(x) = pmax(x, 0.0)`
//! maps `-0.0` to `+0.0` in both paths. `abs` clears the sign bit.
//!
//! # Backends
//!
//! * x86_64 default: two `__m128` halves via SSE2 intrinsics — SSE2 is
//!   part of the x86_64 baseline, so no `target_feature` gymnastics and
//!   no runtime dispatch.
//! * `scalar-fallback` feature (or any non-x86_64 target): a plain
//!   `[f32; 8]` loop body implementing the identical lane semantics.
//!
//! The testkit's `simd` suite proptests every kernel against the scalar
//! oracles across remainder-lane dims, signed zeros, and subnormals; CI
//! runs it under both backends.

#![allow(clippy::needless_range_loop)]

#[cfg(all(target_arch = "x86_64", not(feature = "scalar-fallback")))]
use std::arch::x86_64::*;

/// Select-based maximum with SSE `maxps` semantics: returns `b` when
/// `a <= b`, when the operands compare unordered, and for `±0.0` ties.
#[inline(always)]
pub fn pmax(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// Select-based minimum with SSE `minps` semantics: returns `b` when
/// `a >= b`, when the operands compare unordered, and for `±0.0` ties.
#[inline(always)]
pub fn pmin(a: f32, b: f32) -> f32 {
    if a < b {
        a
    } else {
        b
    }
}

/// `relu` under the kernel contract: `pmax(x, +0.0)`. Maps `-0.0` to
/// `+0.0`, unlike `f32::max(x, 0.0)` whose signed-zero result is
/// unspecified.
#[inline(always)]
pub fn relu0(x: f32) -> f32 {
    pmax(x, 0.0)
}

// ---------------------------------------------------------------------
// F32x8: eight f32 lanes (two __m128 halves or a plain array)
// ---------------------------------------------------------------------

/// Eight f32 lanes with the operation set the distance kernels need.
/// All operations are lane-wise; [`F32x8::hsum`] is the only cross-lane
/// operation and follows the documented pairwise tree.
#[derive(Clone, Copy)]
pub struct F32x8(Repr);

#[cfg(all(target_arch = "x86_64", not(feature = "scalar-fallback")))]
type Repr = (__m128, __m128);

#[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-fallback"))))]
type Repr = [f32; 8];

#[cfg(all(target_arch = "x86_64", not(feature = "scalar-fallback")))]
// Inherent `add`/`sub`/`mul` rather than the `std::ops` traits: the
// kernels spell out every arithmetic step of the reduction-order
// contract, and method syntax keeps those chains grep-able against the
// contract's wording (no operator sugar hiding an intrinsic).
#[allow(clippy::should_implement_trait)]
impl F32x8 {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        // SAFETY: SSE2 is part of the x86_64 baseline.
        unsafe { Self((_mm_setzero_ps(), _mm_setzero_ps())) }
    }

    /// All lanes `x`.
    #[inline(always)]
    pub fn splat(x: f32) -> Self {
        unsafe { Self((_mm_set1_ps(x), _mm_set1_ps(x))) }
    }

    /// Loads lanes from `s[0..8]`. Panics if `s` is shorter than 8.
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        assert!(s.len() >= 8, "F32x8::load needs 8 elements");
        // SAFETY: bounds asserted above; loadu has no alignment demands.
        unsafe { Self((_mm_loadu_ps(s.as_ptr()), _mm_loadu_ps(s.as_ptr().add(4)))) }
    }

    /// Loads `s[0..8]` signed bytes as exactly-converted f32 lanes
    /// (every `i8` is representable in f32, so there is no rounding and
    /// the two backends are trivially bit-identical). Panics if `s` is
    /// shorter than 8.
    #[inline(always)]
    pub fn load_i8(s: &[i8]) -> Self {
        assert!(s.len() >= 8, "F32x8::load_i8 needs 8 elements");
        // SAFETY: bounds asserted above; loadl_epi64 reads exactly 8 bytes.
        unsafe {
            let raw = _mm_loadl_epi64(s.as_ptr() as *const __m128i);
            // Sign-extend i8 → i16 → i32 by duplicating and arithmetic-
            // shifting the high copy back down.
            let w = _mm_srai_epi16::<8>(_mm_unpacklo_epi8(raw, raw));
            let lo = _mm_srai_epi32::<16>(_mm_unpacklo_epi16(w, w));
            let hi = _mm_srai_epi32::<16>(_mm_unpackhi_epi16(w, w));
            Self((_mm_cvtepi32_ps(lo), _mm_cvtepi32_ps(hi)))
        }
    }

    /// Lane-wise `a + b`.
    #[inline(always)]
    pub fn add(self, o: Self) -> Self {
        unsafe { Self((_mm_add_ps(self.0 .0, o.0 .0), _mm_add_ps(self.0 .1, o.0 .1))) }
    }

    /// Lane-wise `a - b`.
    #[inline(always)]
    pub fn sub(self, o: Self) -> Self {
        unsafe { Self((_mm_sub_ps(self.0 .0, o.0 .0), _mm_sub_ps(self.0 .1, o.0 .1))) }
    }

    /// Lane-wise `a * b`.
    #[inline(always)]
    pub fn mul(self, o: Self) -> Self {
        unsafe { Self((_mm_mul_ps(self.0 .0, o.0 .0), _mm_mul_ps(self.0 .1, o.0 .1))) }
    }

    /// Lane-wise [`pmax`] (`maxps`).
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        unsafe { Self((_mm_max_ps(self.0 .0, o.0 .0), _mm_max_ps(self.0 .1, o.0 .1))) }
    }

    /// Lane-wise [`pmin`] (`minps`).
    #[inline(always)]
    pub fn min(self, o: Self) -> Self {
        unsafe { Self((_mm_min_ps(self.0 .0, o.0 .0), _mm_min_ps(self.0 .1, o.0 .1))) }
    }

    /// Lane-wise `relu` ([`relu0`]): `max(x, +0.0)` with `maxps`
    /// semantics, so `-0.0` lanes become `+0.0`.
    #[inline(always)]
    pub fn relu(self) -> Self {
        self.max(Self::zero())
    }

    /// Lane-wise absolute value (sign bit cleared).
    #[inline(always)]
    pub fn abs(self) -> Self {
        unsafe {
            let m = _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff));
            Self((_mm_and_ps(self.0 .0, m), _mm_and_ps(self.0 .1, m)))
        }
    }

    /// Horizontal sum under the documented pairwise tree:
    /// `[a0+a4, a1+a5, a2+a6, a3+a7]` → `[b0+b2, b1+b3]` → `c0 + c1`.
    #[inline(always)]
    pub fn hsum(self) -> f32 {
        unsafe {
            let b = _mm_add_ps(self.0 .0, self.0 .1);
            // movhlps pairs lanes (0,2) and (1,3).
            let hi = _mm_movehl_ps(b, b);
            let c = _mm_add_ps(b, hi);
            let c1 = _mm_shuffle_ps::<0b01>(c, c);
            _mm_cvtss_f32(_mm_add_ss(c, c1))
        }
    }

    /// The lanes as an array (tests / diagnostics).
    #[inline(always)]
    pub fn to_array(self) -> [f32; 8] {
        let mut out = [0.0f32; 8];
        unsafe {
            _mm_storeu_ps(out.as_mut_ptr(), self.0 .0);
            _mm_storeu_ps(out.as_mut_ptr().add(4), self.0 .1);
        }
        out
    }
}

#[cfg(not(all(target_arch = "x86_64", not(feature = "scalar-fallback"))))]
#[allow(clippy::should_implement_trait)]
impl F32x8 {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self([0.0; 8])
    }

    /// All lanes `x`.
    #[inline(always)]
    pub fn splat(x: f32) -> Self {
        Self([x; 8])
    }

    /// Loads lanes from `s[0..8]`. Panics if `s` is shorter than 8.
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        assert!(s.len() >= 8, "F32x8::load needs 8 elements");
        let mut out = [0.0f32; 8];
        out.copy_from_slice(&s[..8]);
        Self(out)
    }

    /// Loads `s[0..8]` signed bytes as exactly-converted f32 lanes.
    /// Panics if `s` is shorter than 8.
    #[inline(always)]
    pub fn load_i8(s: &[i8]) -> Self {
        assert!(s.len() >= 8, "F32x8::load_i8 needs 8 elements");
        let mut out = [0.0f32; 8];
        for j in 0..8 {
            out[j] = s[j] as f32;
        }
        Self(out)
    }

    /// Lane-wise `a + b`.
    #[inline(always)]
    pub fn add(self, o: Self) -> Self {
        let mut out = self.0;
        for j in 0..8 {
            out[j] += o.0[j];
        }
        Self(out)
    }

    /// Lane-wise `a - b`.
    #[inline(always)]
    pub fn sub(self, o: Self) -> Self {
        let mut out = self.0;
        for j in 0..8 {
            out[j] -= o.0[j];
        }
        Self(out)
    }

    /// Lane-wise `a * b`.
    #[inline(always)]
    pub fn mul(self, o: Self) -> Self {
        let mut out = self.0;
        for j in 0..8 {
            out[j] *= o.0[j];
        }
        Self(out)
    }

    /// Lane-wise [`pmax`] (`maxps` semantics).
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        let mut out = [0.0f32; 8];
        for j in 0..8 {
            out[j] = pmax(self.0[j], o.0[j]);
        }
        Self(out)
    }

    /// Lane-wise [`pmin`] (`minps` semantics).
    #[inline(always)]
    pub fn min(self, o: Self) -> Self {
        let mut out = [0.0f32; 8];
        for j in 0..8 {
            out[j] = pmin(self.0[j], o.0[j]);
        }
        Self(out)
    }

    /// Lane-wise `relu` ([`relu0`]).
    #[inline(always)]
    pub fn relu(self) -> Self {
        self.max(Self::zero())
    }

    /// Lane-wise absolute value (sign bit cleared).
    #[inline(always)]
    pub fn abs(self) -> Self {
        let mut out = self.0;
        for o in &mut out {
            *o = f32::from_bits(o.to_bits() & 0x7fff_ffff);
        }
        Self(out)
    }

    /// Horizontal sum under the documented pairwise tree.
    #[inline(always)]
    pub fn hsum(self) -> f32 {
        let a = self.0;
        let b = [a[0] + a[4], a[1] + a[5], a[2] + a[6], a[3] + a[7]];
        let c = [b[0] + b[2], b[1] + b[3]];
        c[0] + c[1]
    }

    /// The lanes as an array (tests / diagnostics).
    #[inline(always)]
    pub fn to_array(self) -> [f32; 8] {
        self.0
    }
}

/// Loads up to 8 elements of `s` into lanes `0..s.len()`, zero-filling
/// the rest — the remainder-chunk load of the lane-striping contract.
#[inline(always)]
fn load_tail(s: &[f32]) -> F32x8 {
    debug_assert!(s.len() < 8);
    let mut buf = [0.0f32; 8];
    buf[..s.len()].copy_from_slice(s);
    F32x8::load(&buf)
}

/// Splits a row into full 8-lane chunks plus the remainder slice.
#[inline(always)]
fn chunks(d: usize) -> (usize, usize) {
    (d / 8, d % 8)
}

// ---------------------------------------------------------------------
// Row kernels (shared by tape ops, geometry, and the item scorer)
// ---------------------------------------------------------------------

/// Lane-striped L1 distance `Σ |a - b|` over equal-length rows — the
/// kernel behind `Tape::l1_rows` and `geometry::d_pp`.
#[inline]
pub fn l1_row(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let (full, rem) = chunks(a.len());
    let mut acc = F32x8::zero();
    for c in 0..full {
        let va = F32x8::load(&a[c * 8..]);
        let vb = F32x8::load(&b[c * 8..]);
        acc = acc.add(va.sub(vb).abs());
    }
    if rem > 0 {
        let va = load_tail(&a[full * 8..]);
        let vb = load_tail(&b[full * 8..]);
        acc = acc.add(va.sub(vb).abs());
    }
    acc.hsum()
}

/// Lane-striped `(D_out, D_in)` of one point against per-dimension box
/// bounds `lo`/`hi` and center `cen` — the inference contract shared by
/// `geometry::d_pb`/`d_pb_weighted` and `ItemScorer`. Separate
/// outside/inside accumulator groups; per dimension:
/// `out += relu(p - hi) + relu(lo - p)`,
/// `in += |cen - clamp(p, lo, hi)|` with `clamp = pmin(pmax(p, lo), hi)`.
#[inline]
pub fn d_pb_bounds_parts(p: &[f32], cen: &[f32], lo: &[f32], hi: &[f32]) -> (f32, f32) {
    debug_assert_eq!(p.len(), cen.len());
    debug_assert_eq!(p.len(), lo.len());
    debug_assert_eq!(p.len(), hi.len());
    let (full, rem) = chunks(p.len());
    let mut out = F32x8::zero();
    let mut inside = F32x8::zero();
    #[inline(always)]
    fn step(vp: F32x8, vc: F32x8, vl: F32x8, vh: F32x8, out: &mut F32x8, inside: &mut F32x8) {
        *out = out.add(vp.sub(vh).relu().add(vl.sub(vp).relu()));
        let clamped = vp.max(vl).min(vh);
        *inside = inside.add(vc.sub(clamped).abs());
    }
    for c in 0..full {
        step(
            F32x8::load(&p[c * 8..]),
            F32x8::load(&cen[c * 8..]),
            F32x8::load(&lo[c * 8..]),
            F32x8::load(&hi[c * 8..]),
            &mut out,
            &mut inside,
        );
    }
    if rem > 0 {
        let at = full * 8;
        step(
            load_tail(&p[at..]),
            load_tail(&cen[at..]),
            load_tail(&lo[at..]),
            load_tail(&hi[at..]),
            &mut out,
            &mut inside,
        );
    }
    (out.hsum(), inside.hsum())
}

/// [`d_pb_bounds_parts`] with the bounds derived on the fly from a
/// `(cen, raw off)` box: per lane `half = relu(off)`, `lo = cen - half`,
/// `hi = cen + half` — the exact values `prepare_box_bounds` materialises,
/// so both forms produce bit-identical totals.
#[inline]
pub fn d_pb_box_parts(p: &[f32], cen: &[f32], off: &[f32]) -> (f32, f32) {
    debug_assert_eq!(p.len(), cen.len());
    debug_assert_eq!(p.len(), off.len());
    let (full, rem) = chunks(p.len());
    let mut out = F32x8::zero();
    let mut inside = F32x8::zero();
    #[inline(always)]
    fn step(vp: F32x8, vc: F32x8, vo: F32x8, out: &mut F32x8, inside: &mut F32x8) {
        let half = vo.relu();
        let vl = vc.sub(half);
        let vh = vc.add(half);
        *out = out.add(vp.sub(vh).relu().add(vl.sub(vp).relu()));
        let clamped = vp.max(vl).min(vh);
        *inside = inside.add(vc.sub(clamped).abs());
    }
    for c in 0..full {
        step(
            F32x8::load(&p[c * 8..]),
            F32x8::load(&cen[c * 8..]),
            F32x8::load(&off[c * 8..]),
            &mut out,
            &mut inside,
        );
    }
    if rem > 0 {
        let at = full * 8;
        step(
            load_tail(&p[at..]),
            load_tail(&cen[at..]),
            load_tail(&off[at..]),
            &mut out,
            &mut inside,
        );
    }
    (out.hsum(), inside.hsum())
}

/// Lane-striped fused point-to-box distance of the **training** op
/// `Tape::d_pb_rows`: a single interleaved accumulator folding
/// `(over + under) + inside_weight · inside` per dimension (deliberately
/// a different fold from the inference kernels' separate out/in groups,
/// matching the fused op's documented contract).
#[inline]
pub fn d_pb_row_interleaved(p: &[f32], cen: &[f32], off: &[f32], inside_weight: f32) -> f32 {
    debug_assert_eq!(p.len(), cen.len());
    debug_assert_eq!(p.len(), off.len());
    let (full, rem) = chunks(p.len());
    let w = F32x8::splat(inside_weight);
    let mut acc = F32x8::zero();
    #[inline(always)]
    fn step(vp: F32x8, vc: F32x8, vo: F32x8, w: F32x8, acc: &mut F32x8) {
        let half = vo.relu();
        let vl = vc.sub(half);
        let vh = vc.add(half);
        let over = vp.sub(vh).relu();
        let under = vl.sub(vp).relu();
        let clamped = vp.max(vl).min(vh);
        let inside = vc.sub(clamped).abs();
        *acc = acc.add(over.add(under).add(w.mul(inside)));
    }
    for c in 0..full {
        step(
            F32x8::load(&p[c * 8..]),
            F32x8::load(&cen[c * 8..]),
            F32x8::load(&off[c * 8..]),
            w,
            &mut acc,
        );
    }
    if rem > 0 {
        let at = full * 8;
        step(
            load_tail(&p[at..]),
            load_tail(&cen[at..]),
            load_tail(&off[at..]),
            w,
            &mut acc,
        );
    }
    acc.hsum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Independent scalar replica of the lane-striping contract: eight
    /// explicit accumulators and the pairwise tree, no F32x8.
    fn striped_sum(terms: impl Iterator<Item = (usize, f32)>) -> f32 {
        let mut lanes = [0.0f32; 8];
        for (k, t) in terms {
            lanes[k % 8] += t;
        }
        let b = [
            lanes[0] + lanes[4],
            lanes[1] + lanes[5],
            lanes[2] + lanes[6],
            lanes[3] + lanes[7],
        ];
        let c = [b[0] + b[2], b[1] + b[3]];
        c[0] + c[1]
    }

    fn vals(seed: u64, n: usize) -> Vec<f32> {
        // Deterministic mixed-magnitude values without pulling in rand.
        (0..n)
            .map(|i| {
                let mixed = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
                let x = ((mixed >> 33) as f32) / (u32::MAX >> 1) as f32;
                (x - 0.5) * 4.0
            })
            .collect()
    }

    #[test]
    fn lane_ops_match_scalar_semantics() {
        let a = [
            1.0f32,
            -0.0,
            0.0,
            -3.5,
            f32::MIN_POSITIVE,
            -1e-40,
            7.25,
            -2.0,
        ];
        let b = [0.5f32, 0.0, -0.0, -3.5, 0.0, 1e-40, -7.25, 8.0];
        let va = F32x8::load(&a);
        let vb = F32x8::load(&b);
        let max = va.max(vb).to_array();
        let min = va.min(vb).to_array();
        let abs = va.abs().to_array();
        let relu = va.relu().to_array();
        for j in 0..8 {
            assert_eq!(max[j].to_bits(), pmax(a[j], b[j]).to_bits(), "max lane {j}");
            assert_eq!(min[j].to_bits(), pmin(a[j], b[j]).to_bits(), "min lane {j}");
            assert_eq!(
                abs[j].to_bits(),
                f32::from_bits(a[j].to_bits() & 0x7fff_ffff).to_bits(),
                "abs lane {j}"
            );
            assert_eq!(relu[j].to_bits(), relu0(a[j]).to_bits(), "relu lane {j}");
        }
    }

    #[test]
    fn hsum_follows_the_documented_tree() {
        let a = [0.1f32, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
        let v = F32x8::load(&a);
        let b = [a[0] + a[4], a[1] + a[5], a[2] + a[6], a[3] + a[7]];
        let c = [b[0] + b[2], b[1] + b[3]];
        assert_eq!(v.hsum().to_bits(), (c[0] + c[1]).to_bits());
    }

    #[test]
    fn l1_row_is_lane_striped_across_remainders() {
        for d in [1usize, 3, 7, 8, 9, 15, 16, 17, 31, 32, 40] {
            let a = vals(d as u64, d);
            let b = vals(d as u64 + 99, d);
            let got = l1_row(&a, &b);
            let want = striped_sum((0..d).map(|k| (k, (a[k] - b[k]).abs())));
            assert_eq!(got.to_bits(), want.to_bits(), "dim {d}");
        }
    }

    #[test]
    fn bounds_and_box_forms_agree_bitwise() {
        for d in [4usize, 8, 13, 32] {
            let p = vals(d as u64, d);
            let cen = vals(d as u64 + 7, d);
            let off = vals(d as u64 + 13, d);
            let lo: Vec<f32> = cen.iter().zip(&off).map(|(&c, &o)| c - relu0(o)).collect();
            let hi: Vec<f32> = cen.iter().zip(&off).map(|(&c, &o)| c + relu0(o)).collect();
            let a = d_pb_box_parts(&p, &cen, &off);
            let b = d_pb_bounds_parts(&p, &cen, &lo, &hi);
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "dim {d} d_out");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "dim {d} d_in");
        }
    }

    #[test]
    fn zero_padding_is_a_bit_exact_identity() {
        // A dim-5 row must equal the same row zero-padded to dim 8: the
        // remainder-lane contract in its purest form.
        let p = [0.7f32, -1.2, 0.0, -0.0, 2.5];
        let cen = [0.1f32, 0.2, -0.0, 0.0, -0.3];
        let off = [0.4f32, -0.1, 0.0, 0.2, 0.6];
        let pad = |s: &[f32]| {
            let mut v = s.to_vec();
            v.resize(8, 0.0);
            v
        };
        let a = d_pb_box_parts(&p, &cen, &off);
        let b = d_pb_box_parts(&pad(&p), &pad(&cen), &pad(&off));
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        let ai = d_pb_row_interleaved(&p, &cen, &off, 0.5);
        let bi = d_pb_row_interleaved(&pad(&p), &pad(&cen), &pad(&off), 0.5);
        assert_eq!(ai.to_bits(), bi.to_bits());
    }
}
