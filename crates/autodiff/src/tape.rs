//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a computation as a flat list of nodes; [`Tape::backward`]
//! walks the list in reverse, accumulating gradients into a
//! [`GradStore`](crate::params::GradStore). The op set is exactly what the
//! InBox model and its baselines need: elementwise arithmetic with row
//! broadcasting, matrix products, the activations used by the paper
//! (ReLU for box offsets, sigmoid for the shrink gate, log-sigmoid for the
//! margin loss of Eq. (12)), axis reductions, column-wise softmax for the
//! attention intersections (Eq. (14), (23), (24)), and embedding-row gathers
//! with sparse gradients.
//!
//! Tapes are cheap and short-lived: training loops build one small tape per
//! sample (or per user), call `backward`, and merge the resulting gradients.

use crate::params::{GradStore, ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Constant,
    Param(ParamId),
    Gather { param: ParamId, indices: Vec<u32> },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var, #[allow(dead_code)] f32),
    MatMul(Var, Var),
    MatMulTN(Var, Var),
    Relu(Var),
    Sigmoid(Var),
    LogSigmoid(Var),
    Tanh(Var),
    Abs(Var),
    Square(Var),
    Minimum(Var, Var),
    Maximum(Var, Var),
    MinAxis0(Var),
    SumAxis0(Var),
    MeanAxis0(Var),
    SumAxis1(Var),
    SoftmaxAxis0(Var),
    SumAll(Var),
    MeanAll(Var),
    ConcatCols(Var, Var),
    RepeatRows(Var, usize),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A recorded computation graph.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

/// Numerically stable `sigmoid`.
pub fn sigmoid_f(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `log(sigmoid(x))`.
pub fn log_sigmoid_f(x: f32) -> f32 {
    if x >= 0.0 {
        -(-x).exp().ln_1p()
    } else {
        x - x.exp().ln_1p()
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Records a constant (no gradient flows into it).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Constant)
    }

    /// Records a whole dense parameter (e.g. an MLP weight matrix).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Records a gather of `indices` rows from an embedding table.
    /// The result is an `indices.len() x cols` tensor; gradients scatter-add
    /// back into the corresponding rows.
    pub fn gather(&mut self, store: &ParamStore, id: ParamId, indices: &[u32]) -> Var {
        let table = store.value(id);
        let cols = table.cols();
        let mut data = Vec::with_capacity(indices.len() * cols);
        for &i in indices {
            data.extend_from_slice(table.row_slice(i as usize));
        }
        self.push(
            Tensor::from_vec(indices.len(), cols, data),
            Op::Gather {
                param: id,
                indices: indices.to_vec(),
            },
        )
    }

    fn broadcast_shapes(&self, a: Var, b: Var, what: &str) -> (usize, usize) {
        let (ar, ac) = self.nodes[a.0].value.shape();
        let (br, bc) = self.nodes[b.0].value.shape();
        assert_eq!(ac, bc, "{what}: column mismatch {ar}x{ac} vs {br}x{bc}");
        assert!(
            ar == br || ar == 1 || br == 1,
            "{what}: rows must match or broadcast, got {ar}x{ac} vs {br}x{bc}"
        );
        (ar.max(br), ac)
    }

    fn binary_elementwise(&mut self, a: Var, b: Var, f: impl Fn(f32, f32) -> f32, op: Op) -> Var {
        let (rows, cols) = self.broadcast_shapes(a, b, "elementwise op");
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let ra = av.row_slice(if av.rows() == 1 { 0 } else { r });
            let rb = bv.row_slice(if bv.rows() == 1 { 0 } else { r });
            for c in 0..cols {
                data.push(f(ra[c], rb[c]));
            }
        }
        self.push(Tensor::from_vec(rows, cols, data), op)
    }

    /// Elementwise `a + b` (row broadcast allowed on either side).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.binary_elementwise(a, b, |x, y| x + y, Op::Add(a, b))
    }

    /// Elementwise `a - b` (row broadcast allowed on either side).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.binary_elementwise(a, b, |x, y| x - y, Op::Sub(a, b))
    }

    /// Elementwise `a * b` (row broadcast allowed on either side). The paper's
    /// `∘` operator in Eq. (13), (15), (21), (22).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.binary_elementwise(a, b, |x, y| x * y, Op::Mul(a, b))
    }

    /// Elementwise minimum (row broadcast allowed); ties route gradient to `a`.
    pub fn minimum(&mut self, a: Var, b: Var) -> Var {
        self.binary_elementwise(a, b, f32::min, Op::Minimum(a, b))
    }

    /// Elementwise maximum (row broadcast allowed); ties route gradient to `a`.
    pub fn maximum(&mut self, a: Var, b: Var) -> Var {
        self.binary_elementwise(a, b, f32::max, Op::Maximum(a, b))
    }

    fn unary(&mut self, a: Var, f: impl Fn(f32) -> f32, op: Op) -> Var {
        let v = self.nodes[a.0].value.clone().map(f);
        self.push(v, op)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        self.unary(a, |x| -x, Op::Neg(a))
    }

    /// Multiplies by a scalar constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        self.unary(a, |x| x * s, Op::Scale(a, s))
    }

    /// Adds a scalar constant.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        self.unary(a, |x| x + s, Op::AddScalar(a, s))
    }

    /// Rectified linear unit — the paper's `σ` in Eq. (1), (5).
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary(a, |x| x.max(0.0), Op::Relu(a))
    }

    /// Logistic sigmoid — the paper's `θ` in Eq. (16).
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, sigmoid_f, Op::Sigmoid(a))
    }

    /// `log(sigmoid(x))`, the building block of the loss in Eq. (12).
    pub fn log_sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, log_sigmoid_f, Op::LogSigmoid(a))
    }

    /// Hyperbolic tangent (used by the KGAT-lite baseline).
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary(a, f32::tanh, Op::Tanh(a))
    }

    /// Elementwise absolute value (L1 distances of Eq. (3), (6), (9)).
    pub fn abs(&mut self, a: Var) -> Var {
        self.unary(a, f32::abs, Op::Abs(a))
    }

    /// Elementwise square (used by L2 regularisers in the baselines).
    pub fn square(&mut self, a: Var) -> Var {
        self.unary(a, |x| x * x, Op::Square(a))
    }

    /// Matrix product `a (n x k) * b (k x m)`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// Transposed matrix product `a^T (p x k)^T * b (k x m) -> p x m` where
    /// `a` is `k x p`. Saves materialising the transpose as a tape node.
    pub fn matmul_tn(&mut self, a: Var, b: Var) -> Var {
        let at = self.nodes[a.0].value.transpose();
        let v = at.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMulTN(a, b))
    }

    /// Column-wise minimum: `n x d -> 1 x d`. The `Min` of Eq. (15), (17).
    pub fn min_axis0(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let (rows, cols) = av.shape();
        assert!(rows > 0, "min_axis0 on empty tensor");
        let mut out = av.row_slice(0).to_vec();
        for r in 1..rows {
            for (o, &v) in out.iter_mut().zip(av.row_slice(r)) {
                if v < *o {
                    *o = v;
                }
            }
        }
        self.push(Tensor::from_vec(1, cols, out), Op::MinAxis0(a))
    }

    /// Column-wise sum: `n x d -> 1 x d`. The `Σ_i` of Eq. (13), (21), (22).
    pub fn sum_axis0(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let (rows, cols) = av.shape();
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            for (o, &v) in out.iter_mut().zip(av.row_slice(r)) {
                *o += v;
            }
        }
        self.push(Tensor::from_vec(1, cols, out), Op::SumAxis0(a))
    }

    /// Column-wise mean: `n x d -> 1 x d`. The `1/n Σ` of Eq. (16), (27), (28).
    pub fn mean_axis0(&mut self, a: Var) -> Var {
        let rows = self.nodes[a.0].value.rows();
        assert!(rows > 0, "mean_axis0 on empty tensor");
        let s = self.sum_axis0(a);
        // Re-record as a dedicated op so backward is a single node.
        let v = self.nodes[s.0].value.clone().map(|x| x / rows as f32);
        self.nodes.pop();
        self.push(v, Op::MeanAxis0(a))
    }

    /// Row-wise sum: `n x d -> n x 1` (per-sample distance totals).
    pub fn sum_axis1(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let (rows, _cols) = av.shape();
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            out.push(av.row_slice(r).iter().sum());
        }
        self.push(Tensor::from_vec(rows, 1, out), Op::SumAxis1(a))
    }

    /// Column-wise softmax over the rows: `n x d -> n x d` where each column
    /// sums to 1. This is the attention normalisation of Eq. (14), (23), (24)
    /// (one attention weight per box per dimension).
    pub fn softmax_axis0(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let (rows, cols) = av.shape();
        assert!(rows > 0, "softmax_axis0 on empty tensor");
        let mut out = vec![0.0f32; rows * cols];
        for c in 0..cols {
            let mut mx = f32::NEG_INFINITY;
            for r in 0..rows {
                mx = mx.max(av.at(r, c));
            }
            let mut denom = 0.0f32;
            for r in 0..rows {
                let e = (av.at(r, c) - mx).exp();
                out[r * cols + c] = e;
                denom += e;
            }
            for r in 0..rows {
                out[r * cols + c] /= denom;
            }
        }
        self.push(Tensor::from_vec(rows, cols, out), Op::SoftmaxAxis0(a))
    }

    /// Sum of all elements: `n x d -> 1 x 1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum();
        self.push(Tensor::scalar(s), Op::SumAll(a))
    }

    /// Mean of all elements: `n x d -> 1 x 1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = &self.nodes[a.0].value;
        let s = v.sum() / v.len() as f32;
        self.push(Tensor::scalar(s), Op::MeanAll(a))
    }

    /// Horizontal concatenation `[a | b]` of two tensors with equal rows.
    /// Used to feed `(Cen(b_i), u)` pairs to the user-bias MLPs (Eq. (23), (24)).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.rows(), bv.rows(), "concat_cols row mismatch");
        let rows = av.rows();
        let mut data = Vec::with_capacity(rows * (av.cols() + bv.cols()));
        for r in 0..rows {
            data.extend_from_slice(av.row_slice(r));
            data.extend_from_slice(bv.row_slice(r));
        }
        self.push(
            Tensor::from_vec(rows, av.cols() + bv.cols(), data),
            Op::ConcatCols(a, b),
        )
    }

    /// Repeats a `1 x d` row `n` times into an `n x d` tensor.
    pub fn repeat_rows(&mut self, a: Var, n: usize) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.rows(), 1, "repeat_rows requires a 1 x d input");
        let row = av.row_slice(0);
        let mut data = Vec::with_capacity(n * row.len());
        for _ in 0..n {
            data.extend_from_slice(row);
        }
        self.push(Tensor::from_vec(n, row.len(), data), Op::RepeatRows(a, n))
    }

    /// Affine layer `x * w + b` with `b` a `1 x d` bias row.
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let xw = self.matmul(x, w);
        self.add(xw, b)
    }

    /// Runs reverse-mode differentiation from scalar output `out` (must be
    /// `1 x 1`) and returns the accumulated parameter gradients.
    pub fn backward(&mut self, out: Var) -> GradStore {
        assert_eq!(
            self.nodes[out.0].value.shape(),
            (1, 1),
            "backward requires a scalar output"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[out.0] = Some(Tensor::scalar(1.0));
        let mut store = GradStore::new();

        for idx in (0..=out.0).rev() {
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            // Split borrows: read node, write into `grads` for parents.
            let op = self.nodes[idx].op.clone();
            match op {
                Op::Constant => {}
                Op::Param(id) => store.add_dense(id, &g),
                Op::Gather { param, indices } => {
                    for (r, &i) in indices.iter().enumerate() {
                        store.add_row(param, i, g.row_slice(r));
                    }
                }
                Op::Add(a, b) => {
                    self.accumulate(&mut grads, a, reduce_to(&g, self.shape_of(a)));
                    self.accumulate(&mut grads, b, reduce_to(&g, self.shape_of(b)));
                }
                Op::Sub(a, b) => {
                    self.accumulate(&mut grads, a, reduce_to(&g, self.shape_of(a)));
                    let neg = g.clone().map(|x| -x);
                    self.accumulate(&mut grads, b, reduce_to(&neg, self.shape_of(b)));
                }
                Op::Mul(a, b) => {
                    let ga = mul_broadcast(&g, &self.nodes[b.0].value);
                    let gb = mul_broadcast(&g, &self.nodes[a.0].value);
                    self.accumulate(&mut grads, a, reduce_to(&ga, self.shape_of(a)));
                    self.accumulate(&mut grads, b, reduce_to(&gb, self.shape_of(b)));
                }
                Op::Neg(a) => {
                    self.accumulate(&mut grads, a, g.map(|x| -x));
                }
                Op::Scale(a, s) => {
                    self.accumulate(&mut grads, a, g.map(|x| x * s));
                }
                Op::AddScalar(a, _) => {
                    self.accumulate(&mut grads, a, g);
                }
                Op::MatMul(a, b) => {
                    let ga = g.matmul(&self.nodes[b.0].value.transpose());
                    let gb = self.nodes[a.0].value.transpose().matmul(&g);
                    self.accumulate(&mut grads, a, ga);
                    self.accumulate(&mut grads, b, gb);
                }
                Op::MatMulTN(a, b) => {
                    // out = a^T b; da = b g^T, db = a g.
                    let ga = self.nodes[b.0].value.matmul(&g.transpose());
                    let gb = self.nodes[a.0].value.matmul(&g);
                    self.accumulate(&mut grads, a, ga);
                    self.accumulate(&mut grads, b, gb);
                }
                Op::Relu(a) => {
                    let ga = elementwise_mask(&g, &self.nodes[a.0].value, |x| x > 0.0);
                    self.accumulate(&mut grads, a, ga);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[idx].value;
                    let ga = zip_map(&g, y, |gv, yv| gv * yv * (1.0 - yv));
                    self.accumulate(&mut grads, a, ga);
                }
                Op::LogSigmoid(a) => {
                    let x = &self.nodes[a.0].value;
                    let ga = zip_map(&g, x, |gv, xv| gv * sigmoid_f(-xv));
                    self.accumulate(&mut grads, a, ga);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[idx].value;
                    let ga = zip_map(&g, y, |gv, yv| gv * (1.0 - yv * yv));
                    self.accumulate(&mut grads, a, ga);
                }
                Op::Abs(a) => {
                    let x = &self.nodes[a.0].value;
                    let ga = zip_map(&g, x, |gv, xv| {
                        if xv > 0.0 {
                            gv
                        } else if xv < 0.0 {
                            -gv
                        } else {
                            0.0
                        }
                    });
                    self.accumulate(&mut grads, a, ga);
                }
                Op::Square(a) => {
                    let x = &self.nodes[a.0].value;
                    let ga = zip_map(&g, x, |gv, xv| 2.0 * gv * xv);
                    self.accumulate(&mut grads, a, ga);
                }
                Op::Minimum(a, b) => {
                    let (ga, gb) =
                        select_grads(&g, &self.nodes[a.0].value, &self.nodes[b.0].value, true);
                    self.accumulate(&mut grads, a, reduce_to(&ga, self.shape_of(a)));
                    self.accumulate(&mut grads, b, reduce_to(&gb, self.shape_of(b)));
                }
                Op::Maximum(a, b) => {
                    let (ga, gb) =
                        select_grads(&g, &self.nodes[a.0].value, &self.nodes[b.0].value, false);
                    self.accumulate(&mut grads, a, reduce_to(&ga, self.shape_of(a)));
                    self.accumulate(&mut grads, b, reduce_to(&gb, self.shape_of(b)));
                }
                Op::MinAxis0(a) => {
                    let x = &self.nodes[a.0].value;
                    let (rows, cols) = x.shape();
                    let mut ga = Tensor::zeros(rows, cols);
                    for c in 0..cols {
                        let mut best_r = 0;
                        let mut best = x.at(0, c);
                        for r in 1..rows {
                            if x.at(r, c) < best {
                                best = x.at(r, c);
                                best_r = r;
                            }
                        }
                        *ga.at_mut(best_r, c) = g.at(0, c);
                    }
                    self.accumulate(&mut grads, a, ga);
                }
                Op::SumAxis0(a) => {
                    let (rows, cols) = self.shape_of(a);
                    let mut ga = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        ga.row_slice_mut(r).copy_from_slice(g.row_slice(0));
                    }
                    self.accumulate(&mut grads, a, ga);
                }
                Op::MeanAxis0(a) => {
                    let (rows, cols) = self.shape_of(a);
                    let mut ga = Tensor::zeros(rows, cols);
                    let inv = 1.0 / rows as f32;
                    for r in 0..rows {
                        for (o, &gv) in ga.row_slice_mut(r).iter_mut().zip(g.row_slice(0)) {
                            *o = gv * inv;
                        }
                    }
                    self.accumulate(&mut grads, a, ga);
                }
                Op::SumAxis1(a) => {
                    let (rows, cols) = self.shape_of(a);
                    let mut ga = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        let gv = g.at(r, 0);
                        for o in ga.row_slice_mut(r) {
                            *o = gv;
                        }
                    }
                    self.accumulate(&mut grads, a, ga);
                }
                Op::SoftmaxAxis0(a) => {
                    let y = &self.nodes[idx].value;
                    let (rows, cols) = y.shape();
                    let mut ga = Tensor::zeros(rows, cols);
                    for c in 0..cols {
                        let mut dot = 0.0f32;
                        for r in 0..rows {
                            dot += g.at(r, c) * y.at(r, c);
                        }
                        for r in 0..rows {
                            *ga.at_mut(r, c) = y.at(r, c) * (g.at(r, c) - dot);
                        }
                    }
                    self.accumulate(&mut grads, a, ga);
                }
                Op::SumAll(a) => {
                    let (rows, cols) = self.shape_of(a);
                    let ga = Tensor::full(rows, cols, g.item());
                    self.accumulate(&mut grads, a, ga);
                }
                Op::MeanAll(a) => {
                    let (rows, cols) = self.shape_of(a);
                    let ga = Tensor::full(rows, cols, g.item() / (rows * cols) as f32);
                    self.accumulate(&mut grads, a, ga);
                }
                Op::ConcatCols(a, b) => {
                    let (rows, ca) = self.shape_of(a);
                    let (_, cb) = self.shape_of(b);
                    let mut ga = Tensor::zeros(rows, ca);
                    let mut gb = Tensor::zeros(rows, cb);
                    for r in 0..rows {
                        let row = g.row_slice(r);
                        ga.row_slice_mut(r).copy_from_slice(&row[..ca]);
                        gb.row_slice_mut(r).copy_from_slice(&row[ca..]);
                    }
                    self.accumulate(&mut grads, a, ga);
                    self.accumulate(&mut grads, b, gb);
                }
                Op::RepeatRows(a, n) => {
                    let (_, cols) = self.shape_of(a);
                    let mut ga = Tensor::zeros(1, cols);
                    for r in 0..n {
                        for (o, &gv) in ga.row_slice_mut(0).iter_mut().zip(g.row_slice(r)) {
                            *o += gv;
                        }
                    }
                    self.accumulate(&mut grads, a, ga);
                }
            }
        }
        store
    }

    fn shape_of(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    fn accumulate(&self, grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
        debug_assert_eq!(g.shape(), self.shape_of(v), "gradient shape mismatch");
        match &mut grads[v.0] {
            Some(acc) => acc.axpy(1.0, &g),
            slot @ None => *slot = Some(g),
        }
    }
}

/// Reduces a broadcast gradient back to the operand's shape: if the operand
/// was `1 x d` but the output was `n x d`, sums over rows.
fn reduce_to(g: &Tensor, shape: (usize, usize)) -> Tensor {
    if g.shape() == shape {
        return g.clone();
    }
    assert_eq!(shape.0, 1, "can only reduce to a broadcast row");
    assert_eq!(shape.1, g.cols());
    let mut out = Tensor::zeros(1, g.cols());
    for r in 0..g.rows() {
        for (o, &v) in out.row_slice_mut(0).iter_mut().zip(g.row_slice(r)) {
            *o += v;
        }
    }
    out
}

/// `g * other` where `other` may be a broadcast `1 x d` row.
fn mul_broadcast(g: &Tensor, other: &Tensor) -> Tensor {
    let (rows, cols) = g.shape();
    let mut out = Tensor::zeros(rows, cols);
    for r in 0..rows {
        let orow = other.row_slice(if other.rows() == 1 { 0 } else { r });
        for (c, &ov) in orow.iter().enumerate().take(cols) {
            *out.at_mut(r, c) = g.at(r, c) * ov;
        }
    }
    out
}

fn zip_map(g: &Tensor, x: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    debug_assert_eq!(g.shape(), x.shape());
    let mut out = g.clone();
    for (o, &xv) in out.data_mut().iter_mut().zip(x.data()) {
        *o = f(*o, xv);
    }
    out
}

fn elementwise_mask(g: &Tensor, x: &Tensor, keep: impl Fn(f32) -> bool) -> Tensor {
    zip_map(g, x, |gv, xv| if keep(xv) { gv } else { 0.0 })
}

/// Splits the output gradient of an elementwise min/max between operands.
/// Ties route to `a` for determinism. Handles row-broadcast operands.
fn select_grads(g: &Tensor, a: &Tensor, b: &Tensor, is_min: bool) -> (Tensor, Tensor) {
    let (rows, cols) = g.shape();
    let mut ga = Tensor::zeros(rows, cols);
    let mut gb = Tensor::zeros(rows, cols);
    for r in 0..rows {
        let ra = a.row_slice(if a.rows() == 1 { 0 } else { r });
        let rb = b.row_slice(if b.rows() == 1 { 0 } else { r });
        for c in 0..cols {
            let take_a = if is_min {
                ra[c] <= rb[c]
            } else {
                ra[c] >= rb[c]
            };
            if take_a {
                *ga.at_mut(r, c) = g.at(r, c);
            } else {
                *gb.at_mut(r, c) = g.at(r, c);
            }
        }
    }
    (ga, gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check: builds the scalar function `f` twice
    /// per perturbed parameter element and compares with the analytic grad.
    fn gradcheck(
        store: &mut ParamStore,
        ids: &[crate::params::ParamId],
        f: impl Fn(&mut Tape, &ParamStore) -> Var,
    ) {
        let mut tape = Tape::new();
        let out = f(&mut tape, store);
        let grads = tape.backward(out);
        let eps = 1e-3f32;
        for &id in ids {
            let shape = store.value(id).shape();
            for r in 0..shape.0 {
                for c in 0..shape.1 {
                    let orig = store.value(id).at(r, c);
                    *store.value_mut(id).at_mut(r, c) = orig + eps;
                    let mut tp = Tape::new();
                    let out_hi = f(&mut tp, store);
                    let hi = tp.value(out_hi).item();
                    *store.value_mut(id).at_mut(r, c) = orig - eps;
                    let mut tp = Tape::new();
                    let out_lo = f(&mut tp, store);
                    let lo = tp.value(out_lo).item();
                    *store.value_mut(id).at_mut(r, c) = orig;
                    let numeric = (hi - lo) / (2.0 * eps);
                    let analytic = grads
                        .dense(id)
                        .map(|t| t.at(r, c))
                        .or_else(|| {
                            grads
                                .sparse(id)
                                .and_then(|m| m.get(&(r as u32)))
                                .map(|row| row[c])
                        })
                        .unwrap_or(0.0);
                    let denom = numeric.abs().max(analytic.abs()).max(1.0);
                    assert!(
                        (numeric - analytic).abs() / denom < 2e-2,
                        "grad mismatch for param {id:?} at ({r},{c}): numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    fn store_with(
        rng: &mut StdRng,
        shapes: &[(&str, usize, usize)],
    ) -> (ParamStore, Vec<crate::params::ParamId>) {
        let mut store = ParamStore::new();
        let ids = shapes
            .iter()
            .map(|&(n, r, c)| store.add(n, Tensor::rand_uniform(r, c, 0.9, rng)))
            .collect();
        (store, ids)
    }

    #[test]
    fn grad_add_sub_mul_broadcast() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut store, ids) = store_with(&mut rng, &[("a", 3, 4), ("b", 1, 4)]);
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let x = t.add(a, b);
            let y = t.mul(x, a);
            let z = t.sub(y, b);
            t.sum_all(z)
        });
    }

    #[test]
    fn grad_matmul_linear() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut store, ids) = store_with(&mut rng, &[("x", 2, 3), ("w", 3, 3), ("b", 1, 3)]);
        gradcheck(&mut store, &ids, |t, s| {
            let x = t.param(s, s.id("x").unwrap());
            let w = t.param(s, s.id("w").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let y = t.linear(x, w, b);
            t.sum_all(y)
        });
    }

    #[test]
    fn grad_activations() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut store, ids) = store_with(&mut rng, &[("x", 2, 5)]);
        gradcheck(&mut store, &ids, |t, s| {
            let x = t.param(s, s.id("x").unwrap());
            let a = t.sigmoid(x);
            let b = t.tanh(a);
            let c = t.log_sigmoid(b);
            let d = t.square(c);
            t.mean_all(d)
        });
    }

    #[test]
    fn grad_relu_abs() {
        // Keep values away from the kink at 0 for finite differences.
        let mut store = ParamStore::new();
        let id = store.add(
            "x",
            Tensor::from_vec(2, 3, vec![0.5, -0.7, 1.2, -0.3, 0.9, -1.5]),
        );
        gradcheck(&mut store, &[id], |t, s| {
            let x = t.param(s, s.id("x").unwrap());
            let r = t.relu(x);
            let a = t.abs(x);
            let y = t.add(r, a);
            t.sum_all(y)
        });
    }

    #[test]
    fn grad_min_max_ops() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut store, ids) = store_with(&mut rng, &[("a", 3, 4), ("b", 1, 4)]);
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let mn = t.minimum(a, b);
            let mx = t.maximum(a, b);
            let c = t.add(mn, mx);
            let m0 = t.min_axis0(c);
            t.sum_all(m0)
        });
    }

    #[test]
    fn grad_softmax_attention_pattern() {
        let mut rng = StdRng::seed_from_u64(6);
        let (mut store, ids) = store_with(&mut rng, &[("cen", 3, 4), ("w", 4, 4), ("b", 1, 4)]);
        gradcheck(&mut store, &ids, |t, s| {
            let cen = t.param(s, s.id("cen").unwrap());
            let w = t.param(s, s.id("w").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let h = t.linear(cen, w, b);
            let a = t.softmax_axis0(h);
            let weighted = t.mul(a, cen);
            let agg = t.sum_axis0(weighted);
            t.sum_all(agg)
        });
    }

    #[test]
    fn grad_reductions_concat_repeat() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut store, ids) = store_with(&mut rng, &[("a", 3, 2), ("u", 1, 2)]);
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            let u = t.param(s, s.id("u").unwrap());
            let ur = t.repeat_rows(u, 3);
            let cat = t.concat_cols(a, ur);
            let m = t.mean_axis0(cat);
            let s1 = t.sum_axis1(m);
            t.sum_all(s1)
        });
    }

    #[test]
    fn grad_matmul_tn() {
        let mut rng = StdRng::seed_from_u64(9);
        let (mut store, ids) = store_with(&mut rng, &[("a", 3, 2), ("b", 3, 4)]);
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let y = t.matmul_tn(a, b); // 2 x 4
            t.sum_all(y)
        });
    }

    #[test]
    fn grad_gather_sparse() {
        let mut rng = StdRng::seed_from_u64(8);
        let (mut store, ids) = store_with(&mut rng, &[("emb", 5, 3)]);
        gradcheck(&mut store, &ids, |t, s| {
            let e = t.gather(s, s.id("emb").unwrap(), &[1, 3, 1]);
            let sq = t.square(e);
            t.sum_all(sq)
        });
    }

    #[test]
    fn gather_repeated_row_accumulates() {
        let mut store = ParamStore::new();
        let id = store.add("emb", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut t = Tape::new();
        let e = t.gather(&store, id, &[0, 0]);
        let out = t.sum_all(e);
        let grads = t.backward(out);
        // Row 0 gathered twice: its gradient must be 2.
        assert_eq!(grads.sparse(id).unwrap()[&0], vec![2.0, 2.0]);
    }

    #[test]
    fn stable_sigmoid_extremes() {
        assert!((sigmoid_f(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid_f(-100.0) < 1e-6);
        assert!(log_sigmoid_f(100.0).abs() < 1e-6);
        assert!((log_sigmoid_f(-100.0) + 100.0).abs() < 1e-3);
        assert!(log_sigmoid_f(-1000.0).is_finite());
        assert!(sigmoid_f(0.0) == 0.5);
    }

    #[test]
    fn forward_values_softmax_columns_sum_to_one() {
        let mut t = Tape::new();
        let x = t.constant(Tensor::from_vec(3, 2, vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.0]));
        let s = t.softmax_axis0(x);
        let v = t.value(s);
        for c in 0..2 {
            let sum: f32 = (0..3).map(|r| v.at(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.constant(Tensor::zeros(2, 2));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t2 = Tape::new();
            let y = t2.constant(Tensor::zeros(2, 2));
            t2.backward(y)
        }));
        assert!(r.is_err());
        // the original tape is still usable
        let _ = t.sum_all(x);
    }

    #[test]
    fn diamond_graph_accumulates_grads() {
        // f = sum(x*x + x) — x used by two paths; df/dx = 2x + 1.
        let mut store = ParamStore::new();
        let id = store.add("x", Tensor::from_vec(1, 2, vec![2.0, -3.0]));
        let mut t = Tape::new();
        let x = t.param(&store, id);
        let sq = t.mul(x, x);
        let y = t.add(sq, x);
        let out = t.sum_all(y);
        let grads = t.backward(out);
        let g = grads.dense(id).unwrap();
        assert_eq!(g.data(), &[5.0, -5.0]);
    }
}
