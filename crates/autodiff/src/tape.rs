//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a computation as a flat list of nodes; [`Tape::backward`]
//! walks the list in reverse, accumulating gradients into a
//! [`GradStore`](crate::params::GradStore). The op set is exactly what the
//! InBox model and its baselines need: elementwise arithmetic with row
//! broadcasting, matrix products, the activations used by the paper
//! (ReLU for box offsets, sigmoid for the shrink gate, log-sigmoid for the
//! margin loss of Eq. (12)), axis reductions, column-wise softmax for the
//! attention intersections (Eq. (14), (23), (24)), and embedding-row gathers
//! with sparse gradients.
//!
//! Tapes are cheap and short-lived: training loops build one small tape per
//! sample (or per user), call `backward`, and merge the resulting gradients.

use crate::params::{GradStore, ParamId, ParamStore};
use crate::simd;
use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Constant,
    Param(ParamId),
    Gather {
        param: ParamId,
        indices: Vec<u32>,
    },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var),
    MatMul(Var, Var),
    MatMulTN(Var, Var),
    Relu(Var),
    Sigmoid(Var),
    LogSigmoid(Var),
    Tanh(Var),
    Abs(Var),
    Square(Var),
    Minimum(Var, Var),
    Maximum(Var, Var),
    MinAxis0(Var),
    SumAxis0(Var),
    MeanAxis0(Var),
    SumAxis1(Var),
    SoftmaxAxis0(Var),
    SumAll(Var),
    MeanAll(Var),
    ConcatCols(Var, Var),
    RepeatRows(Var, usize),
    /// Fused `sum_axis1(abs(a - b))` (`b` may be a broadcast row).
    L1Rows(Var, Var),
    /// Fused `mean_all(log_sigmoid(sign * a + offset))` with `sign = ±1`.
    MeanLogSigmoid(Var, f32, f32),
    /// Fused affine layer `x · w + b` with `b` a `1 x m` bias row.
    Linear(Var, Var, Var),
    /// Fused `sum_axis0(a * values)`: the attention combine of Eq. (13),
    /// (21), (22) with the softmax weights `a` as a separate (stored) node.
    WeightedSumAxis0(Var, Var),
    /// Fused point-to-box distance `D_out + w · D_in` (Eq. (7)–(9)) between
    /// `n x d` points and a `1 x d` box given as center and raw offset.
    DPbRows(Var, Var, Var, f32),
    /// Fused `concat_cols(a, repeat_rows(row, n))` with `row` a `1 x d` row.
    ConcatColsRow(Var, Var),
    /// Fused `linear(concat_cols_row(a, row), w, b)` computed as
    /// `a · W_top + (row · W_bot + b)` — the concatenated input is never
    /// materialised and the broadcast row's product is computed once.
    ConcatRowLinear(Var, Var, Var, Var),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A recorded computation graph.
///
/// The tape owns a free-list of `f32` buffers: [`Tape::reset`] recycles every
/// node's tensor storage (and gather index lists) into it, and all forward
/// ops and backward temporaries draw from it, so a tape reused across the
/// samples of a batch performs no heap allocation in steady state.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    free: Vec<Vec<f32>>,
    free_idx: Vec<Vec<u32>>,
    grad_slots: Vec<Option<Tensor>>,
    param_memo: Vec<(ParamId, Var)>,
}

/// Pops a cleared buffer from the free-list (or a fresh one).
fn take_buf(free: &mut Vec<Vec<f32>>) -> Vec<f32> {
    let mut b = free.pop().unwrap_or_default();
    b.clear();
    b
}

/// A pooled `rows x cols` tensor filled with `fill`.
fn pooled_full(free: &mut Vec<Vec<f32>>, rows: usize, cols: usize, fill: f32) -> Tensor {
    let mut b = take_buf(free);
    b.resize(rows * cols, fill);
    Tensor::from_vec(rows, cols, b)
}

/// A pooled copy of `t`.
fn pooled_copy(free: &mut Vec<Vec<f32>>, t: &Tensor) -> Tensor {
    let mut b = take_buf(free);
    b.extend_from_slice(t.data());
    let (r, c) = t.shape();
    Tensor::from_vec(r, c, b)
}

/// Numerically stable `sigmoid`.
pub fn sigmoid_f(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `log(sigmoid(x))`.
pub fn log_sigmoid_f(x: f32) -> f32 {
    if x >= 0.0 {
        -(-x).exp().ln_1p()
    } else {
        x - x.exp().ln_1p()
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all recorded nodes, recycling every node's tensor buffer (and
    /// gather index list) into the tape's free-list, so a tape reused across
    /// samples stops paying per-sample allocation entirely.
    pub fn reset(&mut self) {
        self.param_memo.clear();
        for n in self.nodes.drain(..) {
            self.free.push(n.value.into_data());
            if let Op::Gather { indices, .. } = n.op {
                self.free_idx.push(indices);
            }
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Records a constant (no gradient flows into it).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Constant)
    }

    /// Records a constant copied from a borrowed tensor (pooled — lets hot
    /// inference paths insert cached values without a fresh allocation).
    pub fn constant_ref(&mut self, t: &Tensor) -> Var {
        let v = pooled_copy(&mut self.free, t);
        self.push(v, Op::Constant)
    }

    /// Records a `rows x cols` all-zero constant from the buffer pool.
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Var {
        let v = pooled_full(&mut self.free, rows, cols, 0.0);
        self.push(v, Op::Constant)
    }

    /// Records a whole dense parameter (e.g. an MLP weight matrix).
    ///
    /// Repeated calls with the same id on one tape return the same node (the
    /// parameter cannot change mid-graph), so e.g. an MLP applied once per
    /// history item copies its weight matrices once per sample, not once per
    /// use. Gradients from every use accumulate into the shared node.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&(_, var)) = self.param_memo.iter().find(|&&(pid, _)| pid == id) {
            return var;
        }
        let v = pooled_copy(&mut self.free, store.value(id));
        let var = self.push(v, Op::Param(id));
        self.param_memo.push((id, var));
        var
    }

    /// Records a gather of `indices` rows from an embedding table.
    /// The result is an `indices.len() x cols` tensor; gradients scatter-add
    /// back into the corresponding rows.
    pub fn gather(&mut self, store: &ParamStore, id: ParamId, indices: &[u32]) -> Var {
        let table = store.value(id);
        let cols = table.cols();
        let mut data = take_buf(&mut self.free);
        data.reserve(indices.len() * cols);
        for &i in indices {
            data.extend_from_slice(table.row_slice(i as usize));
        }
        let mut idx = self.free_idx.pop().unwrap_or_default();
        idx.clear();
        idx.extend_from_slice(indices);
        self.push(
            Tensor::from_vec(indices.len(), cols, data),
            Op::Gather {
                param: id,
                indices: idx,
            },
        )
    }

    fn broadcast_shapes(&self, a: Var, b: Var, what: &str) -> (usize, usize) {
        let (ar, ac) = self.nodes[a.0].value.shape();
        let (br, bc) = self.nodes[b.0].value.shape();
        assert_eq!(ac, bc, "{what}: column mismatch {ar}x{ac} vs {br}x{bc}");
        assert!(
            ar == br || ar == 1 || br == 1,
            "{what}: rows must match or broadcast, got {ar}x{ac} vs {br}x{bc}"
        );
        (ar.max(br), ac)
    }

    fn binary_elementwise(&mut self, a: Var, b: Var, f: impl Fn(f32, f32) -> f32, op: Op) -> Var {
        let (rows, cols) = self.broadcast_shapes(a, b, "elementwise op");
        let mut data = take_buf(&mut self.free);
        data.reserve(rows * cols);
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        for r in 0..rows {
            let ra = av.row_slice(if av.rows() == 1 { 0 } else { r });
            let rb = bv.row_slice(if bv.rows() == 1 { 0 } else { r });
            for c in 0..cols {
                data.push(f(ra[c], rb[c]));
            }
        }
        self.push(Tensor::from_vec(rows, cols, data), op)
    }

    /// Elementwise `a + b` (row broadcast allowed on either side).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.binary_elementwise(a, b, |x, y| x + y, Op::Add(a, b))
    }

    /// Elementwise `a - b` (row broadcast allowed on either side).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.binary_elementwise(a, b, |x, y| x - y, Op::Sub(a, b))
    }

    /// Elementwise `a * b` (row broadcast allowed on either side). The paper's
    /// `∘` operator in Eq. (13), (15), (21), (22).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.binary_elementwise(a, b, |x, y| x * y, Op::Mul(a, b))
    }

    /// Elementwise minimum (row broadcast allowed); ties route gradient to `a`.
    pub fn minimum(&mut self, a: Var, b: Var) -> Var {
        self.binary_elementwise(a, b, f32::min, Op::Minimum(a, b))
    }

    /// Elementwise maximum (row broadcast allowed); ties route gradient to `a`.
    pub fn maximum(&mut self, a: Var, b: Var) -> Var {
        self.binary_elementwise(a, b, f32::max, Op::Maximum(a, b))
    }

    fn unary(&mut self, a: Var, f: impl Fn(f32) -> f32, op: Op) -> Var {
        let mut data = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let (rows, cols) = av.shape();
        data.extend(av.data().iter().map(|&x| f(x)));
        self.push(Tensor::from_vec(rows, cols, data), op)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        self.unary(a, |x| -x, Op::Neg(a))
    }

    /// Multiplies by a scalar constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        self.unary(a, |x| x * s, Op::Scale(a, s))
    }

    /// Adds a scalar constant (gradient is pass-through).
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        self.unary(a, |x| x + s, Op::AddScalar(a))
    }

    /// Rectified linear unit — the paper's `σ` in Eq. (1), (5).
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary(a, |x| x.max(0.0), Op::Relu(a))
    }

    /// Logistic sigmoid — the paper's `θ` in Eq. (16).
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, sigmoid_f, Op::Sigmoid(a))
    }

    /// `log(sigmoid(x))`, the building block of the loss in Eq. (12).
    pub fn log_sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, log_sigmoid_f, Op::LogSigmoid(a))
    }

    /// Hyperbolic tangent (used by the KGAT-lite baseline).
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary(a, f32::tanh, Op::Tanh(a))
    }

    /// Elementwise absolute value (L1 distances of Eq. (3), (6), (9)).
    pub fn abs(&mut self, a: Var) -> Var {
        self.unary(a, f32::abs, Op::Abs(a))
    }

    /// Elementwise square (used by L2 regularisers in the baselines).
    pub fn square(&mut self, a: Var) -> Var {
        self.unary(a, |x| x * x, Op::Square(a))
    }

    /// Matrix product `a (n x k) * b (k x m)`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let mut data = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        av.matmul_into(bv, &mut data);
        let v = Tensor::from_vec(av.rows(), bv.cols(), data);
        self.push(v, Op::MatMul(a, b))
    }

    /// Transposed matrix product `a^T (p x k)^T * b (k x m) -> p x m` where
    /// `a` is `k x p`. Saves materialising the transpose as a tape node.
    pub fn matmul_tn(&mut self, a: Var, b: Var) -> Var {
        let mut data = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        av.matmul_tn_into(bv, &mut data);
        let v = Tensor::from_vec(av.cols(), bv.cols(), data);
        self.push(v, Op::MatMulTN(a, b))
    }

    /// Column-wise minimum: `n x d -> 1 x d`. The `Min` of Eq. (15), (17).
    pub fn min_axis0(&mut self, a: Var) -> Var {
        let mut out = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let (rows, cols) = av.shape();
        assert!(rows > 0, "min_axis0 on empty tensor");
        out.extend_from_slice(av.row_slice(0));
        for r in 1..rows {
            for (o, &v) in out.iter_mut().zip(av.row_slice(r)) {
                if v < *o {
                    *o = v;
                }
            }
        }
        self.push(Tensor::from_vec(1, cols, out), Op::MinAxis0(a))
    }

    /// Column-wise sum: `n x d -> 1 x d`. The `Σ_i` of Eq. (13), (21), (22).
    pub fn sum_axis0(&mut self, a: Var) -> Var {
        let mut out = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let (rows, cols) = av.shape();
        out.resize(cols, 0.0);
        for r in 0..rows {
            for (o, &v) in out.iter_mut().zip(av.row_slice(r)) {
                *o += v;
            }
        }
        self.push(Tensor::from_vec(1, cols, out), Op::SumAxis0(a))
    }

    /// Column-wise mean: `n x d -> 1 x d`. The `1/n Σ` of Eq. (16), (27), (28).
    pub fn mean_axis0(&mut self, a: Var) -> Var {
        let mut out = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let (rows, cols) = av.shape();
        assert!(rows > 0, "mean_axis0 on empty tensor");
        out.resize(cols, 0.0);
        for r in 0..rows {
            for (o, &v) in out.iter_mut().zip(av.row_slice(r)) {
                *o += v;
            }
        }
        let n = rows as f32;
        for o in &mut out {
            *o /= n;
        }
        self.push(Tensor::from_vec(1, cols, out), Op::MeanAxis0(a))
    }

    /// Row-wise sum: `n x d -> n x 1` (per-sample distance totals).
    pub fn sum_axis1(&mut self, a: Var) -> Var {
        let mut out = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let (rows, _cols) = av.shape();
        out.reserve(rows);
        for r in 0..rows {
            out.push(av.row_slice(r).iter().sum());
        }
        self.push(Tensor::from_vec(rows, 1, out), Op::SumAxis1(a))
    }

    /// Column-wise softmax over the rows: `n x d -> n x d` where each column
    /// sums to 1. This is the attention normalisation of Eq. (14), (23), (24)
    /// (one attention weight per box per dimension).
    pub fn softmax_axis0(&mut self, a: Var) -> Var {
        let mut out = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let (rows, cols) = av.shape();
        assert!(rows > 0, "softmax_axis0 on empty tensor");
        out.resize(rows * cols, 0.0);
        for c in 0..cols {
            let mut mx = f32::NEG_INFINITY;
            for r in 0..rows {
                mx = mx.max(av.at(r, c));
            }
            let mut denom = 0.0f32;
            for r in 0..rows {
                let e = (av.at(r, c) - mx).exp();
                out[r * cols + c] = e;
                denom += e;
            }
            for r in 0..rows {
                out[r * cols + c] /= denom;
            }
        }
        self.push(Tensor::from_vec(rows, cols, out), Op::SoftmaxAxis0(a))
    }

    /// Sum of all elements: `n x d -> 1 x 1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum();
        let v = pooled_full(&mut self.free, 1, 1, s);
        self.push(v, Op::SumAll(a))
    }

    /// Mean of all elements: `n x d -> 1 x 1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = &self.nodes[a.0].value;
        let s = t.sum() / t.len() as f32;
        let v = pooled_full(&mut self.free, 1, 1, s);
        self.push(v, Op::MeanAll(a))
    }

    /// Fused `sum_axis1(abs(a - b))`: per-row L1 distance, with `b` (or `a`)
    /// allowed to be a broadcast row. One node instead of three on the
    /// per-sample loss path; gradients are identical to the chain, values
    /// follow the lane-striped reduction order of [`crate::simd::l1_row`]
    /// (the workspace-wide summation contract, shared with the testkit
    /// oracles) rather than the chain's sequential order.
    pub fn l1_rows(&mut self, a: Var, b: Var) -> Var {
        let (rows, _cols) = self.broadcast_shapes(a, b, "l1_rows");
        let mut out = take_buf(&mut self.free);
        out.reserve(rows);
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        for r in 0..rows {
            let ra = av.row_slice(if av.rows() == 1 { 0 } else { r });
            let rb = bv.row_slice(if bv.rows() == 1 { 0 } else { r });
            out.push(simd::l1_row(ra, rb));
        }
        self.push(Tensor::from_vec(rows, 1, out), Op::L1Rows(a, b))
    }

    /// Fused `mean_all(log_sigmoid(sign * a + offset))` — the margin-loss
    /// building block of Eq. (12) as one node. `sign` must be `±1` so the
    /// backward sign flip is exact.
    pub fn mean_log_sigmoid_affine(&mut self, a: Var, sign: f32, offset: f32) -> Var {
        assert!(sign == 1.0 || sign == -1.0, "sign must be ±1");
        let av = &self.nodes[a.0].value;
        let n = av.len();
        let total: f32 = av
            .data()
            .iter()
            .map(|&x| log_sigmoid_f(sign * x + offset))
            .sum();
        let v = pooled_full(&mut self.free, 1, 1, total / n as f32);
        self.push(v, Op::MeanLogSigmoid(a, sign, offset))
    }

    /// Horizontal concatenation `[a | b]` of two tensors with equal rows.
    /// Used to feed `(Cen(b_i), u)` pairs to the user-bias MLPs (Eq. (23), (24)).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let mut data = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.rows(), bv.rows(), "concat_cols row mismatch");
        let rows = av.rows();
        data.reserve(rows * (av.cols() + bv.cols()));
        for r in 0..rows {
            data.extend_from_slice(av.row_slice(r));
            data.extend_from_slice(bv.row_slice(r));
        }
        self.push(
            Tensor::from_vec(rows, av.cols() + bv.cols(), data),
            Op::ConcatCols(a, b),
        )
    }

    /// Repeats a `1 x d` row `n` times into an `n x d` tensor.
    pub fn repeat_rows(&mut self, a: Var, n: usize) -> Var {
        let mut data = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        assert_eq!(av.rows(), 1, "repeat_rows requires a 1 x d input");
        let row = av.row_slice(0);
        data.reserve(n * row.len());
        for _ in 0..n {
            data.extend_from_slice(row);
        }
        self.push(Tensor::from_vec(n, row.len(), data), Op::RepeatRows(a, n))
    }

    /// Affine layer `x * w + b` with `b` a `1 x d` bias row, fused into one
    /// node (the matmul + broadcast-add pair of every MLP layer). Values and
    /// gradients are identical to the two-node chain.
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let mut data = take_buf(&mut self.free);
        let xv = &self.nodes[x.0].value;
        let wv = &self.nodes[w.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(bv.rows(), 1, "linear bias must be a 1 x m row");
        assert_eq!(bv.cols(), wv.cols(), "linear bias width mismatch");
        xv.matmul_into(wv, &mut data);
        let (rows, cols) = (xv.rows(), wv.cols());
        let brow = bv.row_slice(0);
        for r in 0..rows {
            for (o, &bj) in data[r * cols..(r + 1) * cols].iter_mut().zip(brow) {
                *o += bj;
            }
        }
        self.push(Tensor::from_vec(rows, cols, data), Op::Linear(x, w, b))
    }

    /// Fused attention combine `sum_axis0(softmax_axis0(scores) * values)`:
    /// `n x d` scores and values to a `1 x d` row. Two nodes (the stored
    /// softmax plus a fused multiply-reduce) instead of the softmax → mul →
    /// sum chain of Eq. (13), (21), (22), with identical values and
    /// gradients — the backward pass reuses the stored softmax instead of
    /// re-exponentiating.
    pub fn attn_combine(&mut self, scores: Var, values: Var) -> Var {
        let a = self.softmax_axis0(scores);
        self.weighted_sum_axis0(a, values)
    }

    /// Fused `sum_axis0(a * values)` for equal-shape `n x d` inputs.
    pub fn weighted_sum_axis0(&mut self, a: Var, values: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let vv = &self.nodes[values.0].value;
        assert_eq!(av.shape(), vv.shape(), "weighted_sum_axis0 shape mismatch");
        let (rows, cols) = av.shape();
        assert!(rows > 0, "weighted_sum_axis0 on empty tensor");
        let mut out = take_buf(&mut self.free);
        out.resize(cols, 0.0);
        for r in 0..rows {
            for ((o, &ar), &vr) in out.iter_mut().zip(av.row_slice(r)).zip(vv.row_slice(r)) {
                *o += ar * vr;
            }
        }
        self.push(
            Tensor::from_vec(1, cols, out),
            Op::WeightedSumAxis0(a, values),
        )
    }

    /// Fused point-to-box distance (Eq. (7)–(9)) between `n x d` points and a
    /// `1 x d` box (`cen`, raw `off`): `sum_j relu(v - hi) + relu(lo - v) +
    /// w |cen - clamp(v, lo, hi)|` per row, where `hi/lo = cen ± relu(off)`.
    /// One node instead of the fourteen-op chain, identical gradients; values
    /// follow the lane-striped interleaved fold of
    /// [`crate::simd::d_pb_row_interleaved`] (the fused-op training contract,
    /// mirrored bit-for-bit by the testkit oracle).
    pub fn d_pb_rows(&mut self, points: Var, cen: Var, off: Var, inside_weight: f32) -> Var {
        let (rows, _) = self.broadcast_shapes(points, cen, "d_pb_rows");
        let pv = &self.nodes[points.0].value;
        let cv = &self.nodes[cen.0].value;
        let ov = &self.nodes[off.0].value;
        assert_eq!(cv.shape(), ov.shape(), "d_pb_rows box shape mismatch");
        let mut out = take_buf(&mut self.free);
        out.reserve(rows);
        for r in 0..rows {
            let prow = pv.row_slice(if pv.rows() == 1 { 0 } else { r });
            let crow = cv.row_slice(if cv.rows() == 1 { 0 } else { r });
            let orow = ov.row_slice(if ov.rows() == 1 { 0 } else { r });
            out.push(simd::d_pb_row_interleaved(prow, crow, orow, inside_weight));
        }
        self.push(
            Tensor::from_vec(rows, 1, out),
            Op::DPbRows(points, cen, off, inside_weight),
        )
    }

    /// Fused `concat_cols(a, repeat_rows(row, n))`: appends the same `1 x d`
    /// row to every row of `a` without materialising the repeated block.
    pub fn concat_cols_row(&mut self, a: Var, row: Var) -> Var {
        let mut data = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let rv = &self.nodes[row.0].value;
        assert_eq!(rv.rows(), 1, "concat_cols_row requires a 1 x d row");
        let rows = av.rows();
        let rrow = rv.row_slice(0);
        data.reserve(rows * (av.cols() + rrow.len()));
        for r in 0..rows {
            data.extend_from_slice(av.row_slice(r));
            data.extend_from_slice(rrow);
        }
        self.push(
            Tensor::from_vec(rows, av.cols() + rrow.len(), data),
            Op::ConcatColsRow(a, row),
        )
    }

    /// Fused `linear(concat_cols_row(a, row), w, b)`: with `w` split into its
    /// first `ca` rows (`W_top`) and remaining `cr` rows (`W_bot`), computes
    /// `a · W_top + (row · W_bot + b)` — the shared `row · W_bot + b` term is
    /// evaluated once instead of per row, and the concatenated input is never
    /// materialised. The fold order differs from the unfused chain (the
    /// broadcast half plus bias accumulates first), so values agree to f32
    /// rounding rather than bit-for-bit, but the op is deterministic for a
    /// given input regardless of thread count.
    pub fn concat_row_linear(&mut self, a: Var, row: Var, w: Var, b: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let rv = &self.nodes[row.0].value;
        let wv = &self.nodes[w.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(rv.rows(), 1, "concat_row_linear requires a 1 x d row");
        assert_eq!(bv.rows(), 1, "concat_row_linear bias must be a row");
        let (n, ca) = av.shape();
        let cr = rv.cols();
        let m = wv.cols();
        assert_eq!(
            wv.rows(),
            ca + cr,
            "concat_row_linear weight rows must equal a.cols + row.cols"
        );
        assert_eq!(bv.cols(), m, "concat_row_linear bias width mismatch");
        // Shared base for every output row: row · W_bot + b.
        let mut base = take_buf(&mut self.free);
        base.resize(m, 0.0);
        for (p, &rval) in rv.row_slice(0).iter().enumerate() {
            if rval == 0.0 {
                continue;
            }
            for (o, &wj) in base.iter_mut().zip(wv.row_slice(ca + p)) {
                *o += rval * wj;
            }
        }
        for (o, &bj) in base.iter_mut().zip(bv.row_slice(0)) {
            *o += bj;
        }
        let mut data = take_buf(&mut self.free);
        data.reserve(n * m);
        for r in 0..n {
            let start = data.len();
            data.extend_from_slice(&base);
            for (c, &aval) in av.row_slice(r).iter().enumerate() {
                if aval == 0.0 {
                    continue;
                }
                for (o, &wj) in data[start..].iter_mut().zip(wv.row_slice(c)) {
                    *o += aval * wj;
                }
            }
        }
        self.free.push(base);
        self.push(
            Tensor::from_vec(n, m, data),
            Op::ConcatRowLinear(a, row, w, b),
        )
    }

    /// Runs reverse-mode differentiation from scalar output `out` (must be
    /// `1 x 1`) and returns the accumulated parameter gradients.
    pub fn backward(&mut self, out: Var) -> GradStore {
        let mut store = GradStore::new();
        self.backward_into(out, &mut store);
        store
    }

    /// Like [`Tape::backward`], but accumulates into an existing store so a
    /// batch of samples can share one scratch `GradStore` (and its
    /// allocations) instead of building and merging a fresh store per sample.
    ///
    /// Every node-gradient temporary is drawn from — and returned to — the
    /// tape's buffer pool, so repeated backward passes over a reused tape do
    /// not allocate.
    pub fn backward_into(&mut self, out: Var, store: &mut GradStore) {
        assert_eq!(
            self.nodes[out.0].value.shape(),
            (1, 1),
            "backward requires a scalar output"
        );
        let Tape {
            nodes,
            free,
            grad_slots,
            ..
        } = self;
        // Reset the reusable node-gradient scratch, recycling any leftovers.
        for s in grad_slots.iter_mut() {
            if let Some(t) = s.take() {
                free.push(t.into_data());
            }
        }
        if grad_slots.len() < nodes.len() {
            grad_slots.resize_with(nodes.len(), || None);
        } else {
            grad_slots.truncate(nodes.len());
        }
        grad_slots[out.0] = Some(pooled_full(free, 1, 1, 1.0));

        for idx in (0..=out.0).rev() {
            let g = match grad_slots[idx].take() {
                Some(g) => g,
                None => continue,
            };
            match &nodes[idx].op {
                &Op::Constant => {}
                Op::Param(id) => store.add_dense(*id, &g),
                Op::Gather { param, indices } => {
                    for (r, &i) in indices.iter().enumerate() {
                        store.add_row(*param, i, g.row_slice(r));
                    }
                }
                &Op::Add(a, b) => {
                    accum_scaled(nodes, grad_slots, free, a, 1.0, &g);
                    accum_scaled(nodes, grad_slots, free, b, 1.0, &g);
                }
                &Op::Sub(a, b) => {
                    accum_scaled(nodes, grad_slots, free, a, 1.0, &g);
                    accum_scaled(nodes, grad_slots, free, b, -1.0, &g);
                }
                &Op::Mul(a, b) => {
                    let ga = mul_broadcast(free, &g, &nodes[b.0].value);
                    accum_reduced(nodes, grad_slots, free, a, ga);
                    let gb = mul_broadcast(free, &g, &nodes[a.0].value);
                    accum_reduced(nodes, grad_slots, free, b, gb);
                }
                &Op::Neg(a) => accum_scaled(nodes, grad_slots, free, a, -1.0, &g),
                &Op::Scale(a, s) => accum_scaled(nodes, grad_slots, free, a, s, &g),
                &Op::AddScalar(a) => accum_scaled(nodes, grad_slots, free, a, 1.0, &g),
                &Op::MatMul(a, b) => {
                    let (ar, ac) = nodes[a.0].value.shape();
                    let mut da = take_buf(free);
                    g.matmul_nt_into(&nodes[b.0].value, &mut da);
                    accum(grad_slots, free, a, Tensor::from_vec(ar, ac, da));
                    let mut db = take_buf(free);
                    nodes[a.0].value.matmul_tn_into(&g, &mut db);
                    let (br, bc) = nodes[b.0].value.shape();
                    accum(grad_slots, free, b, Tensor::from_vec(br, bc, db));
                }
                &Op::MatMulTN(a, b) => {
                    // out = a^T b; da = b g^T, db = a g.
                    let (ar, ac) = nodes[a.0].value.shape();
                    let mut da = take_buf(free);
                    nodes[b.0].value.matmul_nt_into(&g, &mut da);
                    accum(grad_slots, free, a, Tensor::from_vec(ar, ac, da));
                    let mut db = take_buf(free);
                    nodes[a.0].value.matmul_into(&g, &mut db);
                    let (br, bc) = nodes[b.0].value.shape();
                    accum(grad_slots, free, b, Tensor::from_vec(br, bc, db));
                }
                &Op::Relu(a) => {
                    let x = &nodes[a.0].value;
                    let ga = zip_map(free, &g, x, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                    accum(grad_slots, free, a, ga);
                }
                &Op::Sigmoid(a) => {
                    let y = &nodes[idx].value;
                    let ga = zip_map(free, &g, y, |gv, yv| gv * yv * (1.0 - yv));
                    accum(grad_slots, free, a, ga);
                }
                &Op::LogSigmoid(a) => {
                    let x = &nodes[a.0].value;
                    let ga = zip_map(free, &g, x, |gv, xv| gv * sigmoid_f(-xv));
                    accum(grad_slots, free, a, ga);
                }
                &Op::Tanh(a) => {
                    let y = &nodes[idx].value;
                    let ga = zip_map(free, &g, y, |gv, yv| gv * (1.0 - yv * yv));
                    accum(grad_slots, free, a, ga);
                }
                &Op::Abs(a) => {
                    let x = &nodes[a.0].value;
                    let ga = zip_map(free, &g, x, |gv, xv| {
                        if xv > 0.0 {
                            gv
                        } else if xv < 0.0 {
                            -gv
                        } else {
                            0.0
                        }
                    });
                    accum(grad_slots, free, a, ga);
                }
                &Op::Square(a) => {
                    let x = &nodes[a.0].value;
                    let ga = zip_map(free, &g, x, |gv, xv| 2.0 * gv * xv);
                    accum(grad_slots, free, a, ga);
                }
                &Op::Minimum(a, b) => {
                    let (ga, gb) =
                        select_grads(free, &g, &nodes[a.0].value, &nodes[b.0].value, true);
                    accum_reduced(nodes, grad_slots, free, a, ga);
                    accum_reduced(nodes, grad_slots, free, b, gb);
                }
                &Op::Maximum(a, b) => {
                    let (ga, gb) =
                        select_grads(free, &g, &nodes[a.0].value, &nodes[b.0].value, false);
                    accum_reduced(nodes, grad_slots, free, a, ga);
                    accum_reduced(nodes, grad_slots, free, b, gb);
                }
                &Op::MinAxis0(a) => {
                    let x = &nodes[a.0].value;
                    let (rows, cols) = x.shape();
                    let mut ga = pooled_full(free, rows, cols, 0.0);
                    for c in 0..cols {
                        let mut best_r = 0;
                        let mut best = x.at(0, c);
                        for r in 1..rows {
                            if x.at(r, c) < best {
                                best = x.at(r, c);
                                best_r = r;
                            }
                        }
                        *ga.at_mut(best_r, c) = g.at(0, c);
                    }
                    accum(grad_slots, free, a, ga);
                }
                &Op::SumAxis0(a) => {
                    let (rows, cols) = shape_at(nodes, a);
                    let mut da = take_buf(free);
                    for _ in 0..rows {
                        da.extend_from_slice(g.row_slice(0));
                    }
                    accum(grad_slots, free, a, Tensor::from_vec(rows, cols, da));
                }
                &Op::MeanAxis0(a) => {
                    let (rows, cols) = shape_at(nodes, a);
                    let inv = 1.0 / rows as f32;
                    let mut da = take_buf(free);
                    for _ in 0..rows {
                        da.extend(g.row_slice(0).iter().map(|&gv| gv * inv));
                    }
                    accum(grad_slots, free, a, Tensor::from_vec(rows, cols, da));
                }
                &Op::SumAxis1(a) => {
                    let (rows, cols) = shape_at(nodes, a);
                    let mut da = take_buf(free);
                    for r in 0..rows {
                        let gv = g.at(r, 0);
                        for _ in 0..cols {
                            da.push(gv);
                        }
                    }
                    accum(grad_slots, free, a, Tensor::from_vec(rows, cols, da));
                }
                &Op::SoftmaxAxis0(a) => {
                    let y = &nodes[idx].value;
                    let (rows, cols) = y.shape();
                    let mut ga = pooled_full(free, rows, cols, 0.0);
                    for c in 0..cols {
                        let mut dot = 0.0f32;
                        for r in 0..rows {
                            dot += g.at(r, c) * y.at(r, c);
                        }
                        for r in 0..rows {
                            *ga.at_mut(r, c) = y.at(r, c) * (g.at(r, c) - dot);
                        }
                    }
                    accum(grad_slots, free, a, ga);
                }
                &Op::SumAll(a) => {
                    let (rows, cols) = shape_at(nodes, a);
                    let ga = pooled_full(free, rows, cols, g.item());
                    accum(grad_slots, free, a, ga);
                }
                &Op::MeanAll(a) => {
                    let (rows, cols) = shape_at(nodes, a);
                    let ga = pooled_full(free, rows, cols, g.item() / (rows * cols) as f32);
                    accum(grad_slots, free, a, ga);
                }
                &Op::ConcatCols(a, b) => {
                    let (rows, ca) = shape_at(nodes, a);
                    let (_, cb) = shape_at(nodes, b);
                    let mut da = take_buf(free);
                    let mut db = take_buf(free);
                    for r in 0..rows {
                        let row = g.row_slice(r);
                        da.extend_from_slice(&row[..ca]);
                        db.extend_from_slice(&row[ca..]);
                    }
                    accum(grad_slots, free, a, Tensor::from_vec(rows, ca, da));
                    accum(grad_slots, free, b, Tensor::from_vec(rows, cb, db));
                }
                &Op::RepeatRows(a, n) => {
                    let (_, cols) = shape_at(nodes, a);
                    let mut ga = pooled_full(free, 1, cols, 0.0);
                    for r in 0..n {
                        for (o, &gv) in ga.row_slice_mut(0).iter_mut().zip(g.row_slice(r)) {
                            *o += gv;
                        }
                    }
                    accum(grad_slots, free, a, ga);
                }
                &Op::L1Rows(a, b) => {
                    // Same values the sub→abs→sum_axis1 chain would produce:
                    // sign(a - b) routes ±g[r] per element; a broadcast-row
                    // operand reduces over the rows in ascending order (the
                    // same fold accum_scaled's reduce path uses). Both
                    // operand gradients are built in one pass and handed to
                    // accum as owned tensors, so no sign matrix or extra
                    // copy/reduce passes are materialised.
                    let av = &nodes[a.0].value;
                    let bv = &nodes[b.0].value;
                    let rows = av.rows().max(bv.rows());
                    let cols = av.cols();
                    let a_bcast = av.rows() == 1;
                    let b_bcast = bv.rows() == 1;
                    let mut da = pooled_full(free, av.rows(), cols, 0.0);
                    let mut db = pooled_full(free, bv.rows(), cols, 0.0);
                    for r in 0..rows {
                        let gv = g.at(r, 0);
                        let ra = av.row_slice(if a_bcast { 0 } else { r });
                        let rb = bv.row_slice(if b_bcast { 0 } else { r });
                        let dra = da.row_slice_mut(if a_bcast { 0 } else { r });
                        let drb = db.row_slice_mut(if b_bcast { 0 } else { r });
                        for c in 0..cols {
                            let diff = ra[c] - rb[c];
                            let s = if diff > 0.0 {
                                gv
                            } else if diff < 0.0 {
                                -gv
                            } else {
                                0.0
                            };
                            dra[c] += s;
                            drb[c] += -s;
                        }
                    }
                    accum(grad_slots, free, a, da);
                    accum(grad_slots, free, b, db);
                }
                &Op::MeanLogSigmoid(a, sign, offset) => {
                    let av = &nodes[a.0].value;
                    let (rows, cols) = av.shape();
                    let t1 = g.item() / (rows * cols) as f32;
                    let mut d = take_buf(free);
                    d.reserve(rows * cols);
                    d.extend(
                        av.data()
                            .iter()
                            .map(|&x| sign * (t1 * sigmoid_f(-(sign * x + offset)))),
                    );
                    accum(grad_slots, free, a, Tensor::from_vec(rows, cols, d));
                }
                &Op::Linear(x, w, b) => {
                    let mut dx = take_buf(free);
                    g.matmul_nt_into(&nodes[w.0].value, &mut dx);
                    let (xr, xc) = nodes[x.0].value.shape();
                    accum(grad_slots, free, x, Tensor::from_vec(xr, xc, dx));
                    // Weight gradient: parameters are referenced by many
                    // layers per sample, so after the first touch the slot
                    // exists and `x^T g` sums straight into it.
                    match &mut grad_slots[w.0] {
                        Some(slot) => nodes[x.0].value.matmul_tn_acc(&g, slot),
                        slot @ None => {
                            let mut dw = take_buf(free);
                            nodes[x.0].value.matmul_tn_into(&g, &mut dw);
                            let (wr, wc) = nodes[w.0].value.shape();
                            *slot = Some(Tensor::from_vec(wr, wc, dw));
                        }
                    }
                    // Bias: rows of `g` reduce onto the broadcast row.
                    accum_scaled(nodes, grad_slots, free, b, 1.0, &g);
                }
                &Op::WeightedSumAxis0(a, v) => {
                    let av = &nodes[a.0].value;
                    let vv = &nodes[v.0].value;
                    let (rows, cols) = av.shape();
                    let grow = g.row_slice(0);
                    let mut da = take_buf(free);
                    da.reserve(rows * cols);
                    let mut dv = take_buf(free);
                    dv.reserve(rows * cols);
                    for r in 0..rows {
                        for ((&gc, &ar), &vr) in
                            grow.iter().zip(av.row_slice(r)).zip(vv.row_slice(r))
                        {
                            da.push(gc * vr);
                            dv.push(gc * ar);
                        }
                    }
                    accum(grad_slots, free, a, Tensor::from_vec(rows, cols, da));
                    accum(grad_slots, free, v, Tensor::from_vec(rows, cols, dv));
                }
                &Op::DPbRows(p, cen, off, w) => {
                    let pv = &nodes[p.0].value;
                    let cv = &nodes[cen.0].value;
                    let ov = &nodes[off.0].value;
                    let rows = pv.rows().max(cv.rows());
                    let cols = pv.cols();
                    let (prows, brows) = (pv.rows(), cv.rows());
                    let mut dp = pooled_full(free, prows, cols, 0.0);
                    let mut dcen = pooled_full(free, brows, cols, 0.0);
                    let mut dhi = take_buf(free);
                    dhi.resize(brows * cols, 0.0);
                    let mut dlo = take_buf(free);
                    dlo.resize(brows * cols, 0.0);
                    for r in 0..rows {
                        let gi = g.at(r, 0);
                        let pr = if prows == 1 { 0 } else { r };
                        let br = if brows == 1 { 0 } else { r };
                        let prow = pv.row_slice(pr);
                        let crow = cv.row_slice(br);
                        let orow = ov.row_slice(br);
                        for c in 0..cols {
                            let half = orow[c].max(0.0);
                            let hi = crow[c] + half;
                            let lo = crow[c] - half;
                            let pij = prow[c];
                            if pij - hi > 0.0 {
                                *dp.at_mut(pr, c) += gi;
                                dhi[br * cols + c] -= gi;
                            }
                            if lo - pij > 0.0 {
                                dlo[br * cols + c] += gi;
                                *dp.at_mut(pr, c) -= gi;
                            }
                            // clamp(v, lo, hi) with the same tie routing as
                            // the maximum/minimum node pair.
                            let from_p = pij >= lo;
                            let max_pl = if from_p { pij } else { lo };
                            let at_hi = max_pl > hi;
                            let clamped = if at_hi { hi } else { max_pl };
                            let delta = crow[c] - clamped;
                            let sgn = if delta > 0.0 {
                                1.0
                            } else if delta < 0.0 {
                                -1.0
                            } else {
                                0.0
                            };
                            let t = (w * gi) * sgn;
                            if t != 0.0 {
                                *dcen.at_mut(br, c) += t;
                                if at_hi {
                                    dhi[br * cols + c] -= t;
                                } else if from_p {
                                    *dp.at_mut(pr, c) -= t;
                                } else {
                                    dlo[br * cols + c] -= t;
                                }
                            }
                        }
                    }
                    // hi = cen + relu(off), lo = cen - relu(off).
                    let mut doff = pooled_full(free, brows, cols, 0.0);
                    for br in 0..brows {
                        let orow = ov.row_slice(br);
                        for c in 0..cols {
                            *dcen.at_mut(br, c) += dhi[br * cols + c] + dlo[br * cols + c];
                            if orow[c] > 0.0 {
                                *doff.at_mut(br, c) = dhi[br * cols + c] - dlo[br * cols + c];
                            }
                        }
                    }
                    free.push(dhi);
                    free.push(dlo);
                    accum(grad_slots, free, p, dp);
                    accum(grad_slots, free, cen, dcen);
                    accum(grad_slots, free, off, doff);
                }
                &Op::ConcatColsRow(a, row) => {
                    let (rows, ca) = shape_at(nodes, a);
                    let (_, cr) = shape_at(nodes, row);
                    let mut da = take_buf(free);
                    let mut drow = pooled_full(free, 1, cr, 0.0);
                    for r in 0..rows {
                        let grow = g.row_slice(r);
                        da.extend_from_slice(&grow[..ca]);
                        for (o, &gv) in drow.row_slice_mut(0).iter_mut().zip(&grow[ca..]) {
                            *o += gv;
                        }
                    }
                    accum(grad_slots, free, a, Tensor::from_vec(rows, ca, da));
                    accum(grad_slots, free, row, drow);
                }
                &Op::ConcatRowLinear(a, row, w, b) => {
                    let av = &nodes[a.0].value;
                    let rv = &nodes[row.0].value;
                    let wv = &nodes[w.0].value;
                    let (n, ca) = av.shape();
                    let cr = rv.cols();
                    let m = wv.cols();
                    // Row-sum of g, shared by the bias and broadcast-row
                    // gradients (ascending-row fold, matching the reduce in
                    // `accum_scaled`).
                    let mut gsum = pooled_full(free, 1, m, 0.0);
                    for r in 0..n {
                        for (o, &gj) in gsum.row_slice_mut(0).iter_mut().zip(g.row_slice(r)) {
                            *o += gj;
                        }
                    }
                    // da = g · W_top^T.
                    let mut da = pooled_full(free, n, ca, 0.0);
                    for r in 0..n {
                        let grow = g.row_slice(r);
                        for (c, o) in da.row_slice_mut(r).iter_mut().enumerate() {
                            let mut acc = 0.0f32;
                            for (&gj, &wj) in grow.iter().zip(wv.row_slice(c)) {
                                acc += gj * wj;
                            }
                            *o = acc;
                        }
                    }
                    accum(grad_slots, free, a, da);
                    // drow = gsum · W_bot^T.
                    let mut drow = pooled_full(free, 1, cr, 0.0);
                    for (p, o) in drow.row_slice_mut(0).iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        for (&gj, &wj) in gsum.row_slice(0).iter().zip(wv.row_slice(ca + p)) {
                            acc += gj * wj;
                        }
                        *o = acc;
                    }
                    accum(grad_slots, free, row, drow);
                    // dW: top rows += a^T · g, bottom rows += row^T · gsum,
                    // accumulated straight into the parameter's slot.
                    if grad_slots[w.0].is_none() {
                        grad_slots[w.0] = Some(pooled_full(free, ca + cr, m, 0.0));
                    }
                    let dw = grad_slots[w.0].as_mut().expect("slot installed above");
                    for kk in 0..n {
                        let grow = g.row_slice(kk);
                        for (c, &aval) in nodes[a.0].value.row_slice(kk).iter().enumerate() {
                            if aval == 0.0 {
                                continue;
                            }
                            for (o, &gj) in dw.row_slice_mut(c).iter_mut().zip(grow) {
                                *o += aval * gj;
                            }
                        }
                    }
                    for (p, &rval) in nodes[row.0].value.row_slice(0).iter().enumerate() {
                        if rval == 0.0 {
                            continue;
                        }
                        for (o, &gj) in dw.row_slice_mut(ca + p).iter_mut().zip(gsum.row_slice(0)) {
                            *o += rval * gj;
                        }
                    }
                    accum(grad_slots, free, b, gsum);
                }
            }
            free.push(g.into_data());
        }
    }
}

fn shape_at(nodes: &[Node], v: Var) -> (usize, usize) {
    nodes[v.0].value.shape()
}

/// Accumulates an owned gradient into `v`'s slot (shapes must already
/// match), recycling the tensor's buffer when the slot is occupied.
fn accum(grad_slots: &mut [Option<Tensor>], free: &mut Vec<Vec<f32>>, v: Var, g: Tensor) {
    match &mut grad_slots[v.0] {
        Some(acc) => {
            acc.axpy(1.0, &g);
            free.push(g.into_data());
        }
        slot @ None => *slot = Some(g),
    }
}

/// Accumulates `s * g` into `v`'s slot, summing broadcast rows back down when
/// the operand was a `1 x d` row. Reduced paths only ever see `s = ±1`, where
/// scaling commutes with the row sum bit-for-bit (sign flips are exact).
fn accum_scaled(
    nodes: &[Node],
    grad_slots: &mut [Option<Tensor>],
    free: &mut Vec<Vec<f32>>,
    v: Var,
    s: f32,
    g: &Tensor,
) {
    let (rows, cols) = shape_at(nodes, v);
    if g.shape() == (rows, cols) {
        match &mut grad_slots[v.0] {
            Some(acc) => acc.axpy(s, g),
            slot @ None => {
                let mut b = take_buf(free);
                if s == 1.0 {
                    b.extend_from_slice(g.data());
                } else {
                    b.extend(g.data().iter().map(|&x| s * x));
                }
                *slot = Some(Tensor::from_vec(rows, cols, b));
            }
        }
    } else {
        debug_assert_eq!(rows, 1, "can only reduce to a broadcast row");
        debug_assert_eq!(cols, g.cols());
        debug_assert!(s == 1.0 || s == -1.0);
        let mut red = pooled_full(free, 1, cols, 0.0);
        for r in 0..g.rows() {
            for (o, &x) in red.data_mut().iter_mut().zip(g.row_slice(r)) {
                *o += s * x;
            }
        }
        accum(grad_slots, free, v, red);
    }
}

/// Accumulates an owned gradient into `v`'s slot, summing broadcast rows
/// back down when the operand was a `1 x d` row.
fn accum_reduced(
    nodes: &[Node],
    grad_slots: &mut [Option<Tensor>],
    free: &mut Vec<Vec<f32>>,
    v: Var,
    g: Tensor,
) {
    let (rows, cols) = shape_at(nodes, v);
    if g.shape() == (rows, cols) {
        accum(grad_slots, free, v, g);
    } else {
        debug_assert_eq!(rows, 1, "can only reduce to a broadcast row");
        debug_assert_eq!(cols, g.cols());
        let mut red = pooled_full(free, 1, cols, 0.0);
        for r in 0..g.rows() {
            for (o, &x) in red.data_mut().iter_mut().zip(g.row_slice(r)) {
                *o += x;
            }
        }
        free.push(g.into_data());
        accum(grad_slots, free, v, red);
    }
}

/// `g * other` (pooled) where `other` may be a broadcast `1 x d` row.
fn mul_broadcast(free: &mut Vec<Vec<f32>>, g: &Tensor, other: &Tensor) -> Tensor {
    let (rows, cols) = g.shape();
    let mut out = take_buf(free);
    out.reserve(rows * cols);
    for r in 0..rows {
        let grow = g.row_slice(r);
        let orow = other.row_slice(if other.rows() == 1 { 0 } else { r });
        for (gv, &ov) in grow.iter().zip(orow.iter()) {
            out.push(gv * ov);
        }
    }
    Tensor::from_vec(rows, cols, out)
}

/// Pooled elementwise combine of the output gradient with a reference tensor.
fn zip_map(
    free: &mut Vec<Vec<f32>>,
    g: &Tensor,
    x: &Tensor,
    f: impl Fn(f32, f32) -> f32,
) -> Tensor {
    debug_assert_eq!(g.shape(), x.shape());
    let mut out = take_buf(free);
    out.extend(g.data().iter().zip(x.data()).map(|(&gv, &xv)| f(gv, xv)));
    let (rows, cols) = g.shape();
    Tensor::from_vec(rows, cols, out)
}

/// Splits the output gradient of an elementwise min/max between operands.
/// Ties route to `a` for determinism. Handles row-broadcast operands.
fn select_grads(
    free: &mut Vec<Vec<f32>>,
    g: &Tensor,
    a: &Tensor,
    b: &Tensor,
    is_min: bool,
) -> (Tensor, Tensor) {
    let (rows, cols) = g.shape();
    let mut ga = pooled_full(free, rows, cols, 0.0);
    let mut gb = pooled_full(free, rows, cols, 0.0);
    for r in 0..rows {
        let ra = a.row_slice(if a.rows() == 1 { 0 } else { r });
        let rb = b.row_slice(if b.rows() == 1 { 0 } else { r });
        for c in 0..cols {
            let take_a = if is_min {
                ra[c] <= rb[c]
            } else {
                ra[c] >= rb[c]
            };
            if take_a {
                *ga.at_mut(r, c) = g.at(r, c);
            } else {
                *gb.at_mut(r, c) = g.at(r, c);
            }
        }
    }
    (ga, gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check: builds the scalar function `f` twice
    /// per perturbed parameter element and compares with the analytic grad.
    fn gradcheck(
        store: &mut ParamStore,
        ids: &[crate::params::ParamId],
        f: impl Fn(&mut Tape, &ParamStore) -> Var,
    ) {
        let mut tape = Tape::new();
        let out = f(&mut tape, store);
        let grads = tape.backward(out);
        let eps = 1e-3f32;
        for &id in ids {
            let shape = store.value(id).shape();
            for r in 0..shape.0 {
                for c in 0..shape.1 {
                    let orig = store.value(id).at(r, c);
                    *store.value_mut(id).at_mut(r, c) = orig + eps;
                    let mut tp = Tape::new();
                    let out_hi = f(&mut tp, store);
                    let hi = tp.value(out_hi).item();
                    *store.value_mut(id).at_mut(r, c) = orig - eps;
                    let mut tp = Tape::new();
                    let out_lo = f(&mut tp, store);
                    let lo = tp.value(out_lo).item();
                    *store.value_mut(id).at_mut(r, c) = orig;
                    let numeric = (hi - lo) / (2.0 * eps);
                    let analytic = grads
                        .dense(id)
                        .map(|t| t.at(r, c))
                        .or_else(|| {
                            grads
                                .sparse(id)
                                .and_then(|m| m.get(r as u32))
                                .map(|row| row[c])
                        })
                        .unwrap_or(0.0);
                    let denom = numeric.abs().max(analytic.abs()).max(1.0);
                    assert!(
                        (numeric - analytic).abs() / denom < 2e-2,
                        "grad mismatch for param {id:?} at ({r},{c}): numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    fn store_with(
        rng: &mut StdRng,
        shapes: &[(&str, usize, usize)],
    ) -> (ParamStore, Vec<crate::params::ParamId>) {
        let mut store = ParamStore::new();
        let ids = shapes
            .iter()
            .map(|&(n, r, c)| store.add(n, Tensor::rand_uniform(r, c, 0.9, rng)))
            .collect();
        (store, ids)
    }

    #[test]
    fn grad_add_sub_mul_broadcast() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut store, ids) = store_with(&mut rng, &[("a", 3, 4), ("b", 1, 4)]);
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let x = t.add(a, b);
            let y = t.mul(x, a);
            let z = t.sub(y, b);
            t.sum_all(z)
        });
    }

    #[test]
    fn grad_matmul_linear() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut store, ids) = store_with(&mut rng, &[("x", 2, 3), ("w", 3, 3), ("b", 1, 3)]);
        gradcheck(&mut store, &ids, |t, s| {
            let x = t.param(s, s.id("x").unwrap());
            let w = t.param(s, s.id("w").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let y = t.linear(x, w, b);
            t.sum_all(y)
        });
    }

    #[test]
    fn grad_activations() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut store, ids) = store_with(&mut rng, &[("x", 2, 5)]);
        gradcheck(&mut store, &ids, |t, s| {
            let x = t.param(s, s.id("x").unwrap());
            let a = t.sigmoid(x);
            let b = t.tanh(a);
            let c = t.log_sigmoid(b);
            let d = t.square(c);
            t.mean_all(d)
        });
    }

    #[test]
    fn grad_relu_abs() {
        // Keep values away from the kink at 0 for finite differences.
        let mut store = ParamStore::new();
        let id = store.add(
            "x",
            Tensor::from_vec(2, 3, vec![0.5, -0.7, 1.2, -0.3, 0.9, -1.5]),
        );
        gradcheck(&mut store, &[id], |t, s| {
            let x = t.param(s, s.id("x").unwrap());
            let r = t.relu(x);
            let a = t.abs(x);
            let y = t.add(r, a);
            t.sum_all(y)
        });
    }

    #[test]
    fn grad_min_max_ops() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut store, ids) = store_with(&mut rng, &[("a", 3, 4), ("b", 1, 4)]);
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let mn = t.minimum(a, b);
            let mx = t.maximum(a, b);
            let c = t.add(mn, mx);
            let m0 = t.min_axis0(c);
            t.sum_all(m0)
        });
    }

    #[test]
    fn grad_softmax_attention_pattern() {
        let mut rng = StdRng::seed_from_u64(6);
        let (mut store, ids) = store_with(&mut rng, &[("cen", 3, 4), ("w", 4, 4), ("b", 1, 4)]);
        gradcheck(&mut store, &ids, |t, s| {
            let cen = t.param(s, s.id("cen").unwrap());
            let w = t.param(s, s.id("w").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let h = t.linear(cen, w, b);
            let a = t.softmax_axis0(h);
            let weighted = t.mul(a, cen);
            let agg = t.sum_axis0(weighted);
            t.sum_all(agg)
        });
    }

    #[test]
    fn grad_reductions_concat_repeat() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut store, ids) = store_with(&mut rng, &[("a", 3, 2), ("u", 1, 2)]);
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            let u = t.param(s, s.id("u").unwrap());
            let ur = t.repeat_rows(u, 3);
            let cat = t.concat_cols(a, ur);
            let m = t.mean_axis0(cat);
            let s1 = t.sum_axis1(m);
            t.sum_all(s1)
        });
    }

    #[test]
    fn grad_matmul_tn() {
        let mut rng = StdRng::seed_from_u64(9);
        let (mut store, ids) = store_with(&mut rng, &[("a", 3, 2), ("b", 3, 4)]);
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let y = t.matmul_tn(a, b); // 2 x 4
            t.sum_all(y)
        });
    }

    #[test]
    fn grad_gather_sparse() {
        let mut rng = StdRng::seed_from_u64(8);
        let (mut store, ids) = store_with(&mut rng, &[("emb", 5, 3)]);
        gradcheck(&mut store, &ids, |t, s| {
            let e = t.gather(s, s.id("emb").unwrap(), &[1, 3, 1]);
            let sq = t.square(e);
            t.sum_all(sq)
        });
    }

    #[test]
    fn gather_repeated_row_accumulates() {
        let mut store = ParamStore::new();
        let id = store.add("emb", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut t = Tape::new();
        let e = t.gather(&store, id, &[0, 0]);
        let out = t.sum_all(e);
        let grads = t.backward(out);
        // Row 0 gathered twice: its gradient must be 2.
        assert_eq!(grads.sparse(id).unwrap().get(0).unwrap(), &[2.0, 2.0]);
    }

    #[test]
    fn stable_sigmoid_extremes() {
        assert!((sigmoid_f(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid_f(-100.0) < 1e-6);
        assert!(log_sigmoid_f(100.0).abs() < 1e-6);
        assert!((log_sigmoid_f(-100.0) + 100.0).abs() < 1e-3);
        assert!(log_sigmoid_f(-1000.0).is_finite());
        assert!(sigmoid_f(0.0) == 0.5);
    }

    #[test]
    fn forward_values_softmax_columns_sum_to_one() {
        let mut t = Tape::new();
        let x = t.constant(Tensor::from_vec(3, 2, vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.0]));
        let s = t.softmax_axis0(x);
        let v = t.value(s);
        for c in 0..2 {
            let sum: f32 = (0..3).map(|r| v.at(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.constant(Tensor::zeros(2, 2));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t2 = Tape::new();
            let y = t2.constant(Tensor::zeros(2, 2));
            t2.backward(y)
        }));
        assert!(r.is_err());
        // the original tape is still usable
        let _ = t.sum_all(x);
    }

    #[test]
    fn diamond_graph_accumulates_grads() {
        // f = sum(x*x + x) — x used by two paths; df/dx = 2x + 1.
        let mut store = ParamStore::new();
        let id = store.add("x", Tensor::from_vec(1, 2, vec![2.0, -3.0]));
        let mut t = Tape::new();
        let x = t.param(&store, id);
        let sq = t.mul(x, x);
        let y = t.add(sq, x);
        let out = t.sum_all(y);
        let grads = t.backward(out);
        let g = grads.dense(id).unwrap();
        assert_eq!(g.data(), &[5.0, -5.0]);
    }

    #[test]
    fn fused_l1_rows_matches_unfused_chain() {
        let mut rng = StdRng::seed_from_u64(11);
        let (mut store, ids) = store_with(&mut rng, &[("a", 3, 4), ("b", 1, 4)]);
        // The fused op sums in the lane-striped order (see `simd` module
        // docs), not the chain's sequential order, so equality here is up
        // to reassociation error — bit-exactness vs the striped contract
        // is the testkit oracle suite's job.
        let mut t = Tape::new();
        let a = t.param(&store, ids[0]);
        let b = t.param(&store, ids[1]);
        let fused = t.l1_rows(a, b);
        let d = t.sub(a, b);
        let ad = t.abs(d);
        let chain = t.sum_axis1(ad);
        for (f, c) in t.value(fused).data().iter().zip(t.value(chain).data()) {
            assert!((f - c).abs() <= 1e-5 * (1.0 + c.abs()), "{f} vs {c}");
        }
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let l = t.l1_rows(a, b);
            t.sum_all(l)
        });
    }

    #[test]
    fn fused_mean_log_sigmoid_affine_matches_unfused_chain() {
        let mut rng = StdRng::seed_from_u64(12);
        let (mut store, ids) = store_with(&mut rng, &[("a", 3, 2)]);
        let mut t = Tape::new();
        let a = t.param(&store, ids[0]);
        let fused = t.mean_log_sigmoid_affine(a, -1.0, 0.75);
        let sc = t.scale(a, -1.0);
        let sh = t.add_scalar(sc, 0.75);
        let ls = t.log_sigmoid(sh);
        let chain = t.mean_all(ls);
        assert_eq!(t.value(fused).item(), t.value(chain).item());
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            t.mean_log_sigmoid_affine(a, -1.0, 0.75)
        });
    }

    #[test]
    fn fused_attn_combine_matches_unfused_chain() {
        let mut rng = StdRng::seed_from_u64(13);
        let (mut store, ids) = store_with(&mut rng, &[("s", 3, 4), ("v", 3, 4)]);
        let mut t = Tape::new();
        let s = t.param(&store, ids[0]);
        let v = t.param(&store, ids[1]);
        let fused = t.attn_combine(s, v);
        let a = t.softmax_axis0(s);
        let w = t.mul(a, v);
        let chain = t.sum_axis0(w);
        assert_eq!(t.value(fused).data(), t.value(chain).data());
        gradcheck(&mut store, &ids, |t, s| {
            let sc = t.param(s, s.id("s").unwrap());
            let vl = t.param(s, s.id("v").unwrap());
            let c = t.attn_combine(sc, vl);
            t.sum_all(c)
        });
    }

    #[test]
    fn grad_d_pb_rows_points_against_one_box() {
        // Values chosen so every relu/abs/clamp input sits > 0.1 away from
        // its kink — finite differences with eps 1e-3 stay on one side.
        let mut store = ParamStore::new();
        let p = store.add(
            "p",
            Tensor::from_vec(2, 3, vec![1.2, -0.1, 0.6, 0.2, -0.7, 1.1]),
        );
        let cen = store.add("cen", Tensor::from_vec(1, 3, vec![0.5, -0.2, 1.0]));
        let off = store.add("off", Tensor::from_vec(1, 3, vec![0.4, 0.3, 0.2]));
        gradcheck(&mut store, &[p, cen, off], |t, s| {
            let pv = t.param(s, s.id("p").unwrap());
            let cv = t.param(s, s.id("cen").unwrap());
            let ov = t.param(s, s.id("off").unwrap());
            let d = t.d_pb_rows(pv, cv, ov, 0.5);
            t.sum_all(d)
        });
    }

    #[test]
    fn grad_d_pb_rows_one_point_against_boxes() {
        // Broadcast the other way round: one point, n concept boxes (the
        // stage-1 IRT tag-negative path).
        let mut store = ParamStore::new();
        let p = store.add("p", Tensor::from_vec(1, 3, vec![0.6, 0.0, 0.9]));
        let cen = store.add(
            "cen",
            Tensor::from_vec(2, 3, vec![0.5, -0.2, 1.0, 0.9, 0.4, 0.3]),
        );
        let off = store.add(
            "off",
            Tensor::from_vec(2, 3, vec![0.4, 0.3, 0.2, 0.2, 0.25, 0.35]),
        );
        gradcheck(&mut store, &[p, cen, off], |t, s| {
            let pv = t.param(s, s.id("p").unwrap());
            let cv = t.param(s, s.id("cen").unwrap());
            let ov = t.param(s, s.id("off").unwrap());
            let d = t.d_pb_rows(pv, cv, ov, 0.5);
            t.sum_all(d)
        });
    }

    #[test]
    fn fused_concat_cols_row_matches_concat_repeat() {
        let mut rng = StdRng::seed_from_u64(14);
        let (mut store, ids) = store_with(&mut rng, &[("a", 3, 2), ("u", 1, 2)]);
        let mut t = Tape::new();
        let a = t.param(&store, ids[0]);
        let u = t.param(&store, ids[1]);
        let fused = t.concat_cols_row(a, u);
        let ur = t.repeat_rows(u, 3);
        let chain = t.concat_cols(a, ur);
        assert_eq!(t.value(fused).data(), t.value(chain).data());
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            let u = t.param(s, s.id("u").unwrap());
            let c = t.concat_cols_row(a, u);
            let sq = t.square(c);
            t.sum_all(sq)
        });
    }

    #[test]
    fn fused_concat_row_linear_matches_unfused_chain() {
        let mut rng = StdRng::seed_from_u64(15);
        let (mut store, ids) = store_with(
            &mut rng,
            &[("a", 3, 2), ("u", 1, 2), ("w", 4, 3), ("b", 1, 3)],
        );
        // The fused op folds the broadcast half first, so values agree to
        // f32 rounding rather than bit-for-bit.
        let mut t = Tape::new();
        let a = t.param(&store, ids[0]);
        let u = t.param(&store, ids[1]);
        let w = t.param(&store, ids[2]);
        let b = t.param(&store, ids[3]);
        let fused = t.concat_row_linear(a, u, w, b);
        let cat = t.concat_cols_row(a, u);
        let chain = t.linear(cat, w, b);
        for (x, y) in t.value(fused).data().iter().zip(t.value(chain).data()) {
            assert!((x - y).abs() < 1e-5, "fused {x} vs chain {y}");
        }
        gradcheck(&mut store, &ids, |t, s| {
            let a = t.param(s, s.id("a").unwrap());
            let u = t.param(s, s.id("u").unwrap());
            let w = t.param(s, s.id("w").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let y = t.concat_row_linear(a, u, w, b);
            t.sum_all(y)
        });
    }

    #[test]
    fn grad_linear_shared_weight_accumulates_into_slot() {
        // Two linear calls sharing one weight: the second backward pass hits
        // the accumulate-into-existing-slot path (matmul_tn_acc).
        let mut rng = StdRng::seed_from_u64(16);
        let (mut store, ids) = store_with(&mut rng, &[("x", 2, 3), ("w", 3, 3), ("b", 1, 3)]);
        gradcheck(&mut store, &ids, |t, s| {
            let x = t.param(s, s.id("x").unwrap());
            let w = t.param(s, s.id("w").unwrap());
            let b = t.param(s, s.id("b").unwrap());
            let h = t.linear(x, w, b);
            let h = t.relu(h);
            let y = t.linear(h, w, b);
            t.sum_all(y)
        });
    }
}
