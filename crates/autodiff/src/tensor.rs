//! A minimal dense 2-D tensor of `f32` values.
//!
//! Everything in the InBox model is small dense linear algebra over
//! `n x d` matrices (batches of embedding rows) and `d x d` MLP weights,
//! so a row-major 2-D tensor is the only shape the engine supports.
//! 1-D vectors are represented as `1 x d` tensors.

use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense, row-major `rows x cols` matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{}", self.rows, self.cols)?;
        if self.data.len() <= 16 {
            write!(f, ", {:?}", self.data)?;
        }
        write!(f, ")")
    }
}

impl Tensor {
    /// Creates a tensor from raw data. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// A `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// A `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// A `1 x 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// A `1 x d` row tensor from a slice.
    pub fn row(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Uniform random tensor in `[-scale, scale)`.
    pub fn rand_uniform(rows: usize, cols: usize, scale: f32, rng: &mut StdRng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-style uniform initialisation for a `fan_in x fan_out`
    /// weight matrix: `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
    pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Self {
        let scale = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Self::rand_uniform(fan_in, fan_out, scale, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The value at `(r, c)`.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable reference to the value at `(r, c)`.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Immutable view of row `r`.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1 x 1` tensor. Panics otherwise.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Matrix product `self (n x k) * other (k x m) -> n x m`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Vec::new();
        self.matmul_into(other, &mut out);
        Tensor::from_vec(self.rows, other.cols, out)
    }

    /// [`Tensor::matmul`] writing into a caller-supplied buffer (cleared and
    /// resized), so hot loops can reuse allocations.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Vec<f32>) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        out.clear();
        out.resize(n * m, 0.0);
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * m..(i + 1) * m];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * m..(p + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Transposed product `self^T (k x p)^T * other (k x m) -> p x m` without
    /// materialising the transpose. Accumulation order per output element is
    /// ascending `k`, identical to `self.transpose().matmul(other)`.
    pub fn matmul_tn_into(&self, other: &Tensor, out: &mut Vec<f32>) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, p, m) = (self.rows, self.cols, other.cols);
        out.clear();
        out.resize(p * m, 0.0);
        for kk in 0..k {
            let a_row = &self.data[kk * p..(kk + 1) * p];
            let b_row = &other.data[kk * m..(kk + 1) * m];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * m..(i + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Accumulating transposed product `out += self^T * other`, for summing a
    /// weight gradient directly into an existing accumulator tensor without
    /// materialising the product first. `out` must already be `p x m`.
    pub fn matmul_tn_acc(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn_acc shape mismatch: {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, p, m) = (self.rows, self.cols, other.cols);
        assert_eq!(out.shape(), (p, m), "matmul_tn_acc accumulator shape");
        for kk in 0..k {
            let a_row = &self.data[kk * p..(kk + 1) * p];
            let b_row = other.row_slice(kk);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (o, &b) in out.row_slice_mut(i).iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Product against a transpose `self (n x m) * other^T (k x m)^T -> n x k`
    /// without materialising the transpose. Skip/accumulation semantics match
    /// `self.matmul(&other.transpose())` bit for bit.
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Vec<f32>) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, m, k) = (self.rows, self.cols, other.rows);
        out.clear();
        out.resize(n * k, 0.0);
        for i in 0..n {
            let a_row = &self.data[i * m..(i + 1) * m];
            let out_row = &mut out[i * k..(i + 1) * k];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o += a * other.data[j * m + p];
                }
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = vec![0.0f32; self.data.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        Tensor::from_vec(self.cols, self.rows, out)
    }

    /// Elementwise map, consuming the tensor.
    pub fn map(mut self, f: impl Fn(f32) -> f32) -> Tensor {
        for v in &mut self.data {
            *v = f(*v);
        }
        self
    }

    /// Adds `other * scale` in place. Shapes must match exactly.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.at(0, 2), 3.0);
        assert_eq!(t.at(1, 0), 4.0);
        assert_eq!(t.row_slice(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn zeros_ones_full_scalar() {
        assert_eq!(Tensor::zeros(2, 2).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones(1, 3).data(), &[1.0; 3]);
        assert_eq!(Tensor::full(1, 2, 7.5).data(), &[7.5, 7.5]);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let eye = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&eye).data(), a.data());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.at(2, 1), 6.0);
        assert_eq!(t.transpose().data(), a.data());
    }

    #[test]
    fn map_and_axpy_and_sum() {
        let a = Tensor::from_vec(1, 3, vec![1.0, -2.0, 3.0]).map(|v| v * 2.0);
        assert_eq!(a.data(), &[2.0, -4.0, 6.0]);
        let mut b = Tensor::zeros(1, 3);
        b.axpy(0.5, &a);
        assert_eq!(b.data(), &[1.0, -2.0, 3.0]);
        assert_eq!(b.sum(), 2.0);
        assert_eq!(b.max_abs(), 3.0);
    }

    #[test]
    fn random_init_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform(10, 10, 0.1, &mut rng);
        assert!(t.data().iter().all(|v| (-0.1..0.1).contains(v)));
        let x = Tensor::xavier_uniform(32, 32, &mut rng);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(x.data().iter().all(|v| v.abs() <= bound));
        assert!(x.all_finite());
    }
}
