//! Parameter storage, gradient accumulation, and the Adam optimiser.
//!
//! Two kinds of parameters exist in the InBox training loops:
//!
//! * **dense** parameters (MLP weight matrices, bias rows) whose gradient is a
//!   full tensor every step, and
//! * **embedding tables** (item points, tag/relation box centers and offsets)
//!   from which a step touches only a handful of rows.
//!
//! Both are stored in a [`ParamStore`]; a backward pass produces a
//! [`GradStore`] that keeps dense grads as tensors and embedding grads as
//! sparse row maps, and [`Adam`] applies *lazy* per-row moment updates so an
//! embedding row's optimiser state is only touched when the row has a
//! gradient.

use std::collections::HashMap;

use crate::tensor::Tensor;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) u32);

impl ParamId {
    /// Raw index of the parameter.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

struct ParamSlot {
    name: String,
    value: Tensor,
    /// First Adam moment, lazily allocated on first update.
    m: Option<Tensor>,
    /// Second Adam moment, lazily allocated on first update.
    v: Option<Tensor>,
    /// Per-row update counter for bias correction (lazy/sparse Adam).
    steps: Vec<u64>,
}

/// Named collection of trainable parameters with Adam state.
#[derive(Default)]
pub struct ParamStore {
    slots: Vec<ParamSlot>,
    by_name: HashMap<String, ParamId>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter under `name`. Panics if the name is taken.
    pub fn add(&mut self, name: &str, value: Tensor) -> ParamId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate parameter name {name:?}"
        );
        let id = ParamId(self.slots.len() as u32);
        let rows = value.rows();
        self.slots.push(ParamSlot {
            name: name.to_string(),
            value,
            m: None,
            v: None,
            steps: vec![0; rows],
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks a parameter up by name.
    pub fn id(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.slots[id.index()].value
    }

    /// Mutable access to a parameter value (e.g. for manual re-initialisation).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.index()].value
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.index()].name
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterator over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (ParamId(i as u32), s.name.as_str(), &s.value))
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// Exports all parameter values by name (optimiser state is not
    /// exported; a reloaded model is ready for inference or fresh training).
    pub fn export_values(&self) -> Vec<(String, Tensor)> {
        self.slots
            .iter()
            .map(|s| (s.name.clone(), s.value.clone()))
            .collect()
    }

    /// Imports values by name. Every imported name must already be
    /// registered with a matching shape; unknown names or shape mismatches
    /// are reported as errors. Names absent from `values` keep their current
    /// values.
    pub fn import_values(&mut self, values: &[(String, Tensor)]) -> Result<(), String> {
        for (name, value) in values {
            let id = self
                .id(name)
                .ok_or_else(|| format!("unknown parameter {name:?}"))?;
            let slot = &mut self.slots[id.index()];
            if slot.value.shape() != value.shape() {
                return Err(format!(
                    "shape mismatch for {name:?}: stored {:?}, imported {:?}",
                    slot.value.shape(),
                    value.shape()
                ));
            }
            slot.value = value.clone();
        }
        Ok(())
    }
}

/// Dense gradient slot: the tensor allocation outlives [`GradStore::clear`]
/// so hot loops reuse it; `active` distinguishes "no gradient this batch"
/// from "gradient happens to be zero" (only active slots are visible to the
/// optimiser, which must not advance step counters for untouched params).
struct DenseSlot {
    grad: Tensor,
    active: bool,
}

/// Sparse row gradients for one embedding table. Rows are stored in a
/// directory indexed directly by row number — no hashing on the per-sample
/// scatter path — with an empty buffer meaning "no gradient". `touched`
/// lists the live rows in first-touch order, which makes iteration (and
/// therefore worker-merge and optimiser application) deterministic.
#[derive(Default)]
struct SparseSlot {
    grads: Vec<Vec<f32>>,
    touched: Vec<u32>,
}

/// Read-only view of one embedding table's row gradients.
pub struct SparseRows<'a> {
    slot: &'a SparseSlot,
}

impl<'a> SparseRows<'a> {
    /// The gradient of `row`, if that row was touched.
    pub fn get(&self, row: u32) -> Option<&'a [f32]> {
        self.slot
            .grads
            .get(row as usize)
            .filter(|b| !b.is_empty())
            .map(|b| b.as_slice())
    }

    /// Iterates `(row, grad)` pairs in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &'a [f32])> + '_ {
        self.slot
            .touched
            .iter()
            .map(move |&r| (r, self.slot.grads[r as usize].as_slice()))
    }

    /// Number of touched rows.
    pub fn len(&self) -> usize {
        self.slot.touched.len()
    }

    /// True when no rows were touched.
    pub fn is_empty(&self) -> bool {
        self.slot.touched.is_empty()
    }
}

/// Gradients produced by one (or several merged) backward passes.
///
/// Dense gradients (MLP weights, bias rows — a small fixed set per model)
/// live in a `Vec` indexed directly by [`ParamId`]; only embedding-row
/// gradients pay for hashing. A store is designed to be long-lived:
/// [`GradStore::clear`] keeps every allocation (dense tensors, hash-map
/// capacity, row buffers) so a per-worker scratch store allocates only on
/// its first batch.
#[derive(Default)]
pub struct GradStore {
    dense: Vec<Option<DenseSlot>>,
    sparse: Vec<SparseSlot>,
}

impl GradStore {
    /// An empty gradient store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates a dense gradient for `id`.
    pub fn add_dense(&mut self, id: ParamId, grad: &Tensor) {
        let i = id.index();
        if i >= self.dense.len() {
            self.dense.resize_with(i + 1, || None);
        }
        let slot = &mut self.dense[i];
        match slot {
            Some(s) if s.active => s.grad.axpy(1.0, grad),
            Some(s) if s.grad.shape() == grad.shape() => {
                s.grad.data_mut().copy_from_slice(grad.data());
                s.active = true;
            }
            _ => {
                *slot = Some(DenseSlot {
                    grad: grad.clone(),
                    active: true,
                })
            }
        }
    }

    /// Accumulates a gradient for a single row of an embedding parameter.
    pub fn add_row(&mut self, id: ParamId, row: u32, grad: &[f32]) {
        debug_assert!(!grad.is_empty(), "zero-width row gradient");
        let i = id.index();
        if i >= self.sparse.len() {
            self.sparse.resize_with(i + 1, SparseSlot::default);
        }
        let slot = &mut self.sparse[i];
        let r = row as usize;
        if r >= slot.grads.len() {
            slot.grads.resize_with(r + 1, Vec::new);
        }
        let buf = &mut slot.grads[r];
        if buf.is_empty() {
            buf.extend_from_slice(grad);
            slot.touched.push(row);
        } else {
            for (a, &g) in buf.iter_mut().zip(grad) {
                *a += g;
            }
        }
    }

    /// Dense gradient for `id`, if any.
    pub fn dense(&self, id: ParamId) -> Option<&Tensor> {
        self.dense
            .get(id.index())
            .and_then(|s| s.as_ref())
            .filter(|s| s.active)
            .map(|s| &s.grad)
    }

    /// Sparse row gradients for `id`, if any.
    pub fn sparse(&self, id: ParamId) -> Option<SparseRows<'_>> {
        self.sparse
            .get(id.index())
            .filter(|s| !s.touched.is_empty())
            .map(|slot| SparseRows { slot })
    }

    /// True when no gradients were recorded.
    pub fn is_empty(&self) -> bool {
        self.dense.iter().all(|s| !matches!(s, Some(s) if s.active))
            && self.sparse.iter().all(|s| s.touched.is_empty())
    }

    /// Forgets all recorded gradients while keeping the allocations (dense
    /// tensors, the row directory, row buffers) for the next round.
    pub fn clear(&mut self) {
        for s in self.dense.iter_mut().flatten() {
            s.active = false;
        }
        for s in &mut self.sparse {
            let SparseSlot { grads, touched } = s;
            for &r in touched.iter() {
                grads[r as usize].clear();
            }
            touched.clear();
        }
    }

    /// Merges another gradient store into this one by reference (used to
    /// combine per-worker partial gradients without consuming the worker's
    /// scratch buffers). Row order follows the other store's first-touch
    /// order, so merges are deterministic.
    pub fn merge_from(&mut self, other: &GradStore) {
        for (i, slot) in other.dense.iter().enumerate() {
            if let Some(s) = slot {
                if s.active {
                    self.add_dense(ParamId(i as u32), &s.grad);
                }
            }
        }
        for (i, slot) in other.sparse.iter().enumerate() {
            for &r in &slot.touched {
                self.add_row(ParamId(i as u32), r, &slot.grads[r as usize]);
            }
        }
    }

    /// Merges another gradient store into this one.
    pub fn merge(&mut self, other: GradStore) {
        self.merge_from(&other);
    }

    /// Multiplies every stored gradient by `scale` (e.g. `1/batch`).
    pub fn scale(&mut self, scale: f32) {
        for s in self.dense.iter_mut().flatten() {
            if s.active {
                for v in s.grad.data_mut() {
                    *v *= scale;
                }
            }
        }
        for slot in &mut self.sparse {
            let SparseSlot { grads, touched } = slot;
            for &r in touched.iter() {
                for v in &mut grads[r as usize] {
                    *v *= scale;
                }
            }
        }
    }

    /// Global L2 norm of all stored gradients (dense and sparse rows
    /// combined), accumulated in `f64` for stability. Useful as a
    /// per-batch training health signal.
    pub fn l2_norm(&self) -> f64 {
        let mut acc = 0.0f64;
        for s in self.dense.iter().flatten() {
            if s.active {
                for &v in s.grad.data() {
                    acc += (v as f64) * (v as f64);
                }
            }
        }
        for slot in &self.sparse {
            for &r in &slot.touched {
                for &v in &slot.grads[r as usize] {
                    acc += (v as f64) * (v as f64);
                }
            }
        }
        acc.sqrt()
    }

    /// Largest absolute gradient component across all parameters.
    pub fn max_abs(&self) -> f32 {
        let mut m = 0.0f32;
        for s in self.dense.iter().flatten() {
            if s.active {
                m = m.max(s.grad.max_abs());
            }
        }
        for slot in &self.sparse {
            for &r in &slot.touched {
                for v in &slot.grads[r as usize] {
                    m = m.max(v.abs());
                }
            }
        }
        m
    }
}

/// Adam optimiser (Kingma & Ba) with lazy sparse row updates.
///
/// The paper trains InBox with Adam at learning rate `1e-4` with step decay;
/// the learning rate here is mutable so trainers can implement that schedule.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (`alpha`).
    pub lr: f32,
    /// First-moment decay (`beta_1`).
    pub beta1: f32,
    /// Second-moment decay (`beta_2`).
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
}

impl Default for Adam {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

impl Adam {
    /// Creates an Adam optimiser with the given learning rate and default betas.
    pub fn with_lr(lr: f32) -> Self {
        Self {
            lr,
            ..Self::default()
        }
    }

    /// Applies `grads` to `store`.
    ///
    /// Dense parameters get a full-tensor update; embedding parameters are
    /// updated row-by-row with per-row bias correction, so untouched rows keep
    /// their moments untouched (lazy Adam).
    pub fn step(&self, store: &mut ParamStore, grads: &GradStore) {
        for (idx, slot) in store.slots.iter_mut().enumerate() {
            let id = ParamId(idx as u32);
            let (rows, cols) = slot.value.shape();
            if let Some(g) = grads.dense(id) {
                assert_eq!(g.shape(), slot.value.shape(), "dense grad shape mismatch");
                let m = slot.m.get_or_insert_with(|| Tensor::zeros(rows, cols));
                let v = slot.v.get_or_insert_with(|| Tensor::zeros(rows, cols));
                for r in 0..rows {
                    slot.steps[r] += 1;
                    let t = slot.steps[r];
                    adam_row(
                        self,
                        t,
                        slot.value.row_slice_mut(r),
                        m.row_slice_mut(r),
                        v.row_slice_mut(r),
                        g.row_slice(r),
                    );
                }
            }
            if let Some(rows_map) = grads.sparse(id) {
                let m = slot.m.get_or_insert_with(|| Tensor::zeros(rows, cols));
                let v = slot.v.get_or_insert_with(|| Tensor::zeros(rows, cols));
                for (r, g) in rows_map.iter() {
                    let r = r as usize;
                    assert!(r < rows, "sparse grad row {r} out of bounds for {rows}");
                    assert_eq!(g.len(), cols, "sparse grad row width mismatch");
                    slot.steps[r] += 1;
                    let t = slot.steps[r];
                    adam_row(
                        self,
                        t,
                        slot.value.row_slice_mut(r),
                        m.row_slice_mut(r),
                        v.row_slice_mut(r),
                        g,
                    );
                }
            }
        }
    }
}

fn adam_row(cfg: &Adam, t: u64, w: &mut [f32], m: &mut [f32], v: &mut [f32], g: &[f32]) {
    let bc1 = 1.0 - cfg.beta1.powi(t as i32);
    let bc2 = 1.0 - cfg.beta2.powi(t as i32);
    for i in 0..w.len() {
        m[i] = cfg.beta1 * m[i] + (1.0 - cfg.beta1) * g[i];
        v[i] = cfg.beta2 * v[i] + (1.0 - cfg.beta2) * g[i] * g[i];
        let m_hat = m[i] / bc1;
        let v_hat = v[i] / bc2;
        w[i] -= cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
    }
}

/// Plain SGD, mostly useful in tests to check gradient directions.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Applies a plain gradient-descent step.
    pub fn step(&self, store: &mut ParamStore, grads: &GradStore) {
        for (idx, slot) in store.slots.iter_mut().enumerate() {
            let id = ParamId(idx as u32);
            if let Some(g) = grads.dense(id) {
                slot.value.axpy(-self.lr, g);
            }
            if let Some(rows_map) = grads.sparse(id) {
                for (r, g) in rows_map.iter() {
                    let row = slot.value.row_slice_mut(r as usize);
                    for (w, &gv) in row.iter_mut().zip(g) {
                        *w -= self.lr * gv;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_registration_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.add("emb", Tensor::zeros(4, 2));
        let b = store.add("w", Tensor::ones(2, 2));
        assert_eq!(store.id("emb"), Some(a));
        assert_eq!(store.id("w"), Some(b));
        assert_eq!(store.id("missing"), None);
        assert_eq!(store.name(a), "emb");
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 12);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut store = ParamStore::new();
        store.add("x", Tensor::zeros(1, 1));
        store.add("x", Tensor::zeros(1, 1));
    }

    #[test]
    fn gradstore_accumulates_dense_and_sparse() {
        let mut g = GradStore::new();
        let id = ParamId(0);
        g.add_dense(id, &Tensor::ones(1, 2));
        g.add_dense(id, &Tensor::ones(1, 2));
        assert_eq!(g.dense(id).unwrap().data(), &[2.0, 2.0]);

        g.add_row(id, 3, &[1.0, 0.0]);
        g.add_row(id, 3, &[0.5, 1.0]);
        let rows = g.sparse(id).unwrap();
        assert_eq!(rows.get(3).unwrap(), &[1.5, 1.0]);
        assert_eq!(rows.len(), 1);
        assert_eq!(g.max_abs(), 2.0);
    }

    #[test]
    fn gradstore_merge_and_scale() {
        let id = ParamId(1);
        let mut a = GradStore::new();
        a.add_dense(id, &Tensor::ones(1, 2));
        a.add_row(id, 0, &[1.0, 2.0]);
        let mut b = GradStore::new();
        b.add_dense(id, &Tensor::ones(1, 2));
        b.add_row(id, 0, &[3.0, 4.0]);
        b.add_row(id, 1, &[5.0, 6.0]);
        a.merge(b);
        a.scale(0.5);
        assert_eq!(a.dense(id).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(a.sparse(id).unwrap().get(0).unwrap(), &[2.0, 3.0]);
        assert_eq!(a.sparse(id).unwrap().get(1).unwrap(), &[2.5, 3.0]);
    }

    #[test]
    fn cleared_gradstore_is_invisible_to_adam() {
        let mut store = ParamStore::new();
        let id = store.add("emb", Tensor::zeros(2, 2));
        let adam = Adam::with_lr(0.1);
        let mut g = GradStore::new();
        g.add_dense(id, &Tensor::ones(2, 2));
        g.add_row(id, 1, &[1.0, 1.0]);
        g.clear();
        assert!(g.is_empty());
        assert!(g.dense(id).is_none());
        assert!(g.sparse(id).is_none());
        // A cleared store must not advance Adam's per-row step counters —
        // zeroed-but-visible grads would corrupt bias correction.
        adam.step(&mut store, &g);
        assert_eq!(store.slots[0].steps, vec![0, 0]);
        // Accumulation restarts from zero on the reused buffers.
        g.add_dense(id, &Tensor::ones(2, 2));
        g.add_row(id, 0, &[2.0, 3.0]);
        assert_eq!(g.dense(id).unwrap().data(), &[1.0; 4]);
        assert_eq!(g.sparse(id).unwrap().get(0).unwrap(), &[2.0, 3.0]);
        assert!(g.sparse(id).unwrap().get(1).is_none());
    }

    #[test]
    fn export_import_roundtrip() {
        let mut a = ParamStore::new();
        a.add("x", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        a.add("y", Tensor::zeros(2, 2));
        let exported = a.export_values();
        let mut b = ParamStore::new();
        b.add("x", Tensor::zeros(1, 2));
        b.add("y", Tensor::ones(2, 2));
        b.import_values(&exported).unwrap();
        assert_eq!(b.value(b.id("x").unwrap()).data(), &[1.0, 2.0]);
        assert_eq!(b.value(b.id("y").unwrap()).data(), &[0.0; 4]);
        // Unknown name rejected.
        let bad = vec![("z".to_string(), Tensor::zeros(1, 1))];
        assert!(b.import_values(&bad).is_err());
        // Shape mismatch rejected.
        let bad = vec![("x".to_string(), Tensor::zeros(2, 2))];
        assert!(b
            .import_values(&bad)
            .unwrap_err()
            .contains("shape mismatch"));
    }

    #[test]
    fn adam_moves_against_gradient() {
        let mut store = ParamStore::new();
        let id = store.add("p", Tensor::from_vec(1, 2, vec![1.0, -1.0]));
        let adam = Adam::with_lr(0.1);
        let mut g = GradStore::new();
        g.add_dense(id, &Tensor::from_vec(1, 2, vec![1.0, -1.0]));
        adam.step(&mut store, &g);
        let v = store.value(id).data();
        assert!(v[0] < 1.0, "positive grad must decrease the weight");
        assert!(v[1] > -1.0, "negative grad must increase the weight");
    }

    #[test]
    fn adam_sparse_rows_only_touch_their_moments() {
        let mut store = ParamStore::new();
        let id = store.add("emb", Tensor::zeros(3, 2));
        let adam = Adam::with_lr(0.1);
        let mut g = GradStore::new();
        g.add_row(id, 1, &[1.0, 1.0]);
        adam.step(&mut store, &g);
        let v = store.value(id);
        assert_eq!(v.row_slice(0), &[0.0, 0.0]);
        assert!(v.row_slice(1)[0] < 0.0);
        assert_eq!(v.row_slice(2), &[0.0, 0.0]);
        // Row step counters: only row 1 advanced.
        assert_eq!(store.slots[0].steps, vec![0, 1, 0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise f(w) = (w - 3)^2 by feeding grad 2(w-3).
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(0.0));
        let adam = Adam::with_lr(0.1);
        for _ in 0..500 {
            let w = store.value(id).item();
            let mut g = GradStore::new();
            g.add_dense(id, &Tensor::scalar(2.0 * (w - 3.0)));
            adam.step(&mut store, &g);
        }
        assert!((store.value(id).item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_step() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(1.0));
        let sgd = Sgd { lr: 0.5 };
        let mut g = GradStore::new();
        g.add_dense(id, &Tensor::scalar(1.0));
        g.add_row(id, 0, &[1.0]);
        sgd.step(&mut store, &g);
        // 1.0 - 0.5*1.0 (dense) - 0.5*1.0 (sparse) = 0.0
        assert_eq!(store.value(id).item(), 0.0);
    }
}
