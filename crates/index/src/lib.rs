//! `inbox-index` — box-aware top-k candidate retrieval over a frozen item
//! matrix.
//!
//! Serving ranks a user by scoring their interest box against every item
//! point (`γ - D_PB(v, b)`, Eq. (29)) and taking the masked top-K — an
//! O(items) scan per request. This crate makes that cost sublinear in the
//! catalog with the classic candidate-generation-then-rerank split:
//!
//! 1. **IVF coarse partition** ([`IvfIndex::build`]): Lloyd's k-means over
//!    the item points under the **L1 metric** — the same metric family as
//!    the paper's `D_PB` distance (Eq. (7)–(9)) — yields `nlist`
//!    partitions, each with its centroid and the axis-aligned bounding
//!    rectangle of its member points.
//! 2. **Probe selection** ([`IvfIndex::select_probes`]): partitions are
//!    ordered by the exact box-to-centroid distance (outside + weighted
//!    inside term, identical shape to the item score) and the `nprobe`
//!    nearest are kept.
//! 3. **Box pruning + exact re-rank** ([`IvfIndex::rerank`]): probed
//!    partitions are visited nearest-first. Once the running top-k is
//!    full, a partition whose bounding rectangle provably cannot contain
//!    an item beating the current k-th best score is skipped whole; every
//!    surviving partition's members are scored **exactly** through a
//!    caller-supplied scorer (production passes
//!    `ItemScorer::score_item_prepared`, the very arithmetic of the full
//!    sort), maintaining a masked top-k heap with the evaluation
//!    protocol's tie-breaking (score descending, then smaller item id).
//!
//! Because candidate scores and the selection comparator are bit-identical
//! to the full sort, the served answer is **byte-identical to the full
//! sort whenever the probed partitions contain the true top-k** — the
//! `nprobe = nlist` configuration recovers the full sort exactly (the
//! pruning bound is conservative), and smaller `nprobe` trades recall for
//! latency, a contract the testkit differential suite measures.
//!
//! The rectangle bound is evaluated in `f64` with a small safety slack
//! ([`PRUNE_SLACK`]) so `f32` rounding in the exact per-item scores can
//! never make the pruning unsound (see DESIGN.md §12 for the derivation).

#![warn(missing_docs)]

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use inbox_kg::ItemId;

/// How the serving engine generates ranking candidates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IndexMode {
    /// Score every item (the exact O(items) baseline).
    #[default]
    FullSort,
    /// IVF candidate generation with exact re-rank. `0` for either knob
    /// means "derive from the catalog size" ([`auto_nlist`] /
    /// [`auto_nprobe`]).
    Ivf {
        /// Number of coarse partitions (k-means cells).
        nlist: usize,
        /// Partitions probed per query, nearest-first.
        nprobe: usize,
    },
}

impl IndexMode {
    /// Parses a CLI-style mode name: `full` / `fullsort` / `ivf`. The IVF
    /// knobs start at 0 (auto) — callers overlay `--nlist` / `--nprobe`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "full" | "fullsort" | "full-sort" => Some(IndexMode::FullSort),
            "ivf" => Some(IndexMode::Ivf {
                nlist: 0,
                nprobe: 0,
            }),
            _ => None,
        }
    }
}

impl std::fmt::Display for IndexMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexMode::FullSort => write!(f, "full"),
            IndexMode::Ivf { nlist, nprobe } => write!(f, "ivf(nlist={nlist},nprobe={nprobe})"),
        }
    }
}

/// Default partition count for a catalog: ~2·√n keeps mean partition size
/// at √n/2, balancing the O(nlist) centroid scan against per-partition
/// scan cost. Clamped so tiny catalogs still get a few partitions.
pub fn auto_nlist(n_items: usize) -> usize {
    (((n_items as f64).sqrt() * 2.0) as usize).clamp(1, n_items.max(1))
}

/// Default probe count for a partition count: an eighth of the partitions,
/// at least 4 — measured ≥0.95 recall@20 on the synthetic twins (the
/// testkit differential suite asserts exactly this contract).
pub fn auto_nprobe(nlist: usize) -> usize {
    (nlist / 8).max(4).min(nlist.max(1))
}

/// Construction error. The only failure mode is the injected chaos site
/// `index.build_partition` — k-means itself cannot fail — but builders
/// must treat any error as "serve without an index", never as fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The `index.build_partition` failpoint fired while finalising the
    /// given partition (chaos testing only).
    Injected(usize),
    /// The item matrix was empty or its length was not a multiple of the
    /// dimension.
    BadShape {
        /// Length of the flat item matrix.
        len: usize,
        /// Claimed embedding dimension.
        dim: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Injected(p) => {
                write!(f, "injected failure finalising partition {p}")
            }
            BuildError::BadShape { len, dim } => {
                write!(f, "item matrix of length {len} is not n×{dim}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// K-means construction knobs. Defaults are what the serving engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfParams {
    /// Number of partitions.
    pub nlist: usize,
    /// Lloyd iterations (assignment is deterministic, so few suffice).
    pub iters: usize,
    /// Seed stride for centroid initialisation (deterministic).
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        Self {
            nlist: 0, // resolved against the catalog by `build`
            iters: 6,
            seed: 0x1db0,
        }
    }
}

/// One query's box geometry, borrowed from the caller's scratch: the
/// per-dimension bounds `lo = cen - relu(off)` / `hi = cen + relu(off)`
/// plus the scoring constants. The engine fills `lo`/`hi` through
/// `ItemScorer::prepare_box_bounds` so they are the exact values the
/// re-rank scorer uses.
#[derive(Debug, Clone, Copy)]
pub struct BoxQuery<'a> {
    /// Lower box corner per dimension.
    pub lo: &'a [f32],
    /// Upper box corner per dimension.
    pub hi: &'a [f32],
    /// Box center per dimension.
    pub cen: &'a [f32],
    /// Weight of the inside-distance term (`inside_weight` in Eq. (9)).
    pub inside_weight: f32,
    /// Score offset (`γ` in Eq. (29)); scores are `gamma - distance`.
    pub gamma: f32,
    /// Conservative upper bound on how far the caller's exact scorer can
    /// sit *below* the f32 geometry the rectangle bound describes — `0.0`
    /// for exact f32 scoring, [`inbox_core::QuantizedItems::bound_slack`]
    /// when re-ranking with the int8 kernel. The prune test widens by
    /// this much so a quantized score that rounded down never lets a
    /// partition holding a true top-k item be discarded.
    pub bound_slack: f32,
}

/// Absolute slack subtracted from the k-th best score before a partition
/// is pruned. The rectangle bound is computed in `f64` (so it is a true
/// bound on the real-valued score), but the exact per-item scores are
/// `f32` arithmetic whose rounding can land a hair *above* the real
/// value; the slack absorbs that, keeping pruning conservative. Scores
/// live on the `gamma`-ish scale (units, not millionths), so 1e-3 costs
/// essentially no pruning power.
pub const PRUNE_SLACK: f64 = 1e-3;

#[derive(PartialEq)]
struct Cand {
    score: f32,
    item: u32,
}

impl Eq for Cand {}

// Max-heap that pops the *worst* candidate: lowest score, ties toward the
// largest item id — the same survivor set and final ordering as
// `inbox_eval::top_k_masked`, so a candidate superset of the true top-k
// reranks to a byte-identical answer.
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.item.cmp(&other.item))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable per-thread buffers for [`IvfIndex::select_probes`] /
/// [`IvfIndex::rerank`]: after one warm query, the whole probe → prune →
/// re-rank pipeline is allocation-free.
#[derive(Default)]
pub struct QueryScratch {
    /// `(rect min-distance, centroid distance, partition)` rows, sorted
    /// ascending, truncated to `nprobe` by `select_probes`.
    probes: Vec<(f32, f32, u32)>,
    /// Backing storage for the top-k heap (round-trips through the heap).
    heap: Vec<Cand>,
    /// `(coarse score, item)` near-threshold buffer for
    /// [`IvfIndex::rerank_refined`]'s exact re-scoring pass.
    near: Vec<(f32, u32)>,
}

impl QueryScratch {
    /// Partitions the last [`IvfIndex::select_probes`] chose, as
    /// `(rect min-distance, centroid distance, partition)`, most promising
    /// first.
    pub fn probes(&self) -> &[(f32, f32, u32)] {
        &self.probes
    }
}

/// What one [`IvfIndex::rerank`] did, for telemetry and contracts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RerankStats {
    /// Probed partitions whose members were actually scored.
    pub scanned_partitions: usize,
    /// Probed partitions skipped whole by the bounding-rectangle test.
    pub pruned_partitions: usize,
    /// Candidate items scored exactly (mask hits excluded).
    pub candidates: usize,
}

/// An IVF coarse partition of a frozen item-point matrix, with per-
/// partition bounding rectangles for geometric pruning. Immutable after
/// construction; queries are `&self` and thread-safe.
pub struct IvfIndex {
    dim: usize,
    n_items: usize,
    /// Row-major `nlist × dim` partition centroids.
    centroids: Vec<f32>,
    /// Row-major `nlist × dim` per-partition lower rectangle corners.
    rect_lo: Vec<f32>,
    /// Row-major `nlist × dim` per-partition upper rectangle corners.
    rect_hi: Vec<f32>,
    /// CSR offsets into `members`, length `nlist + 1`.
    offsets: Vec<u32>,
    /// Item ids grouped by partition.
    members: Vec<u32>,
}

impl IvfIndex {
    /// Builds the index over a row-major `n × dim` item matrix (the same
    /// layout `ItemScorer` snapshots). Deterministic in `params.seed`.
    ///
    /// The `index.build_partition` failpoint fires per finalised
    /// partition; a fired site aborts the build with
    /// [`BuildError::Injected`] — callers degrade to full-sort serving.
    pub fn build(items: &[f32], dim: usize, params: &IvfParams) -> Result<Self, BuildError> {
        if dim == 0 || items.is_empty() || !items.len().is_multiple_of(dim) {
            return Err(BuildError::BadShape {
                len: items.len(),
                dim,
            });
        }
        let n = items.len() / dim;
        let nlist = if params.nlist == 0 {
            auto_nlist(n)
        } else {
            params.nlist.clamp(1, n)
        };

        // Deterministic spread initialisation: a fixed odd stride derived
        // from the seed walks the catalog, so seeds land all over the
        // matrix regardless of item order.
        let stride = (params.seed | 1) as usize % n.max(1);
        let stride = if stride == 0 { 1 } else { stride };
        let mut centroids = vec![0.0f32; nlist * dim];
        let mut at = 0usize;
        let mut taken = std::collections::HashSet::new();
        for c in 0..nlist {
            while !taken.insert(at) {
                at = (at + 1) % n;
            }
            centroids[c * dim..(c + 1) * dim].copy_from_slice(&items[at * dim..(at + 1) * dim]);
            at = (at + stride) % n;
        }

        // Lloyd iterations under L1 assignment with mean updates. Mean
        // (not median) updates are fine here: the index only needs a
        // *partition*, correctness never depends on centroid optimality.
        let mut assign = vec![0u32; n];
        let mut counts = vec![0u32; nlist];
        let mut sums = vec![0.0f64; nlist * dim];
        for _ in 0..params.iters.max(1) {
            for (i, row) in items.chunks_exact(dim).enumerate() {
                assign[i] = nearest_centroid_l1(&centroids, dim, row);
            }
            counts.fill(0);
            sums.fill(0.0);
            for (i, row) in items.chunks_exact(dim).enumerate() {
                let c = assign[i] as usize;
                counts[c] += 1;
                for (k, &v) in row.iter().enumerate() {
                    sums[c * dim + k] += v as f64;
                }
            }
            // Empty partitions steal the point farthest from its centroid
            // so every partition stays populated (and the CSR total).
            for c in 0..nlist {
                if counts[c] > 0 {
                    for k in 0..dim {
                        centroids[c * dim + k] = (sums[c * dim + k] / counts[c] as f64) as f32;
                    }
                } else {
                    let far = farthest_item(items, dim, &centroids, &assign);
                    centroids[c * dim..(c + 1) * dim]
                        .copy_from_slice(&items[far * dim..(far + 1) * dim]);
                }
            }
        }
        for (i, row) in items.chunks_exact(dim).enumerate() {
            assign[i] = nearest_centroid_l1(&centroids, dim, row);
        }

        // Finalise: CSR member lists + bounding rectangles.
        counts.fill(0);
        for &a in &assign {
            counts[a as usize] += 1;
        }
        let mut offsets = vec![0u32; nlist + 1];
        for c in 0..nlist {
            offsets[c + 1] = offsets[c] + counts[c];
        }
        let mut cursor: Vec<u32> = offsets[..nlist].to_vec();
        let mut members = vec![0u32; n];
        for (i, &a) in assign.iter().enumerate() {
            members[cursor[a as usize] as usize] = i as u32;
            cursor[a as usize] += 1;
        }
        let mut rect_lo = vec![f32::MAX; nlist * dim];
        let mut rect_hi = vec![f32::MIN; nlist * dim];
        for c in 0..nlist {
            if inbox_obs::failpoint!("index.build_partition") {
                return Err(BuildError::Injected(c));
            }
            for &item in &members[offsets[c] as usize..offsets[c + 1] as usize] {
                let row = &items[item as usize * dim..(item as usize + 1) * dim];
                for (k, &v) in row.iter().enumerate() {
                    let lo = &mut rect_lo[c * dim + k];
                    *lo = lo.min(v);
                    let hi = &mut rect_hi[c * dim + k];
                    *hi = hi.max(v);
                }
            }
        }
        Ok(Self {
            dim,
            n_items: n,
            centroids,
            rect_lo,
            rect_hi,
            offsets,
            members,
        })
    }

    /// Number of partitions.
    pub fn nlist(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of indexed items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Item ids of one partition.
    pub fn members(&self, partition: usize) -> &[u32] {
        &self.members[self.offsets[partition] as usize..self.offsets[partition + 1] as usize]
    }

    /// Exact box-to-point distance (`d_out + w·d_in`, Eq. (7)–(9)) from
    /// the query box to a centroid — the probe ordering key.
    fn box_distance(&self, q: &BoxQuery<'_>, centroid: usize) -> f32 {
        let row = &self.centroids[centroid * self.dim..(centroid + 1) * self.dim];
        let mut out = 0.0f32;
        let mut inside = 0.0f32;
        for (k, &p) in row.iter().enumerate() {
            out += (p - q.hi[k]).max(0.0) + (q.lo[k] - p).max(0.0);
            inside += (q.cen[k] - p.clamp(q.lo[k], q.hi[k])).abs();
        }
        out + q.inside_weight * inside
    }

    /// Upper bound (in `f64`, conservative) on the score any point inside
    /// partition `c`'s bounding rectangle can achieve against the box:
    /// `gamma - min over the rectangle of (d_out + w·d_in)`. Per
    /// dimension the outside term's minimum is the rectangle-to-box gap
    /// and the inside term's minimum is the distance from the center to
    /// the clamped rectangle interval — see DESIGN.md §12.
    fn rect_score_bound(&self, q: &BoxQuery<'_>, c: usize) -> f64 {
        let base = c * self.dim;
        let mut d_out = 0.0f64;
        let mut d_in = 0.0f64;
        for k in 0..self.dim {
            let rlo = self.rect_lo[base + k] as f64;
            let rhi = self.rect_hi[base + k] as f64;
            let blo = q.lo[k] as f64;
            let bhi = q.hi[k] as f64;
            let cen = q.cen[k] as f64;
            d_out += (rlo - bhi).max(0.0) + (blo - rhi).max(0.0);
            // The clamp of any rectangle point into the box spans
            // [clamp(rlo), clamp(rhi)]; the nearest such value to the
            // center bounds the inside term.
            let a = rlo.clamp(blo, bhi);
            let b = rhi.clamp(blo, bhi);
            d_in += if cen < a {
                a - cen
            } else if cen > b {
                cen - b
            } else {
                0.0
            };
        }
        q.gamma as f64 - (d_out + q.inside_weight as f64 * d_in)
    }

    /// Stage 1 — candidate generation: ranks every partition by how close
    /// its geometry can possibly come to the box and keeps the `nprobe`
    /// most promising in `scratch`. The primary key is the **rectangle
    /// min-distance** (the MINDIST of R-tree best-first search: the
    /// smallest `d_out + w·d_in` any member could achieve, i.e. exactly
    /// `gamma - rect_score_bound`); rectangles that overlap the box all
    /// tie at 0, so the **box-to-centroid distance** (Eq. (7)–(9) applied
    /// to the k-means centroid) breaks ties, then the partition id keeps
    /// probing deterministic. Allocation-free once `scratch` is warm.
    pub fn select_probes(&self, q: &BoxQuery<'_>, nprobe: usize, scratch: &mut QueryScratch) {
        let nlist = self.nlist();
        scratch.probes.clear();
        scratch.probes.reserve(nlist);
        for c in 0..nlist {
            let mindist = (q.gamma as f64 - self.rect_score_bound(q, c)) as f32;
            scratch
                .probes
                .push((mindist, self.box_distance(q, c), c as u32));
        }
        scratch.probes.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(Ordering::Equal)
                .then(a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal))
                .then(a.2.cmp(&b.2))
        });
        scratch.probes.truncate(nprobe.max(1).min(nlist));
    }

    /// Stage 2 — box pruning + exact re-rank over the probed partitions:
    /// visits `scratch`'s probe list nearest-first, skips partitions whose
    /// rectangle bound cannot beat the current k-th best score (minus
    /// [`PRUNE_SLACK`] and the query's `bound_slack`), and scores every
    /// remaining member through
    /// `score` (exact, caller-supplied) into a masked top-k. `mask` must
    /// be sorted ascending. The result lands in `out` best-first with the
    /// evaluation protocol's tie-breaking; the returned stats feed the
    /// candidate-set telemetry.
    pub fn rerank(
        &self,
        q: &BoxQuery<'_>,
        k: usize,
        mask: &[ItemId],
        mut score: impl FnMut(u32) -> f32,
        scratch: &mut QueryScratch,
        out: &mut Vec<(ItemId, f32)>,
    ) -> RerankStats {
        let mut stats = RerankStats::default();
        let mut entries = std::mem::take(&mut scratch.heap);
        entries.clear();
        entries.reserve(k + 1);
        let mut heap: BinaryHeap<Cand> = BinaryHeap::from(entries);
        for i in 0..scratch.probes.len() {
            let c = scratch.probes[i].2 as usize;
            if heap.len() == k {
                // `peek` is the worst kept candidate — the k-th best.
                let kth = heap.peek().map(|e| e.score as f64).unwrap_or(f64::MIN);
                if self.rect_score_bound(q, c) < kth - PRUNE_SLACK - q.bound_slack as f64 {
                    stats.pruned_partitions += 1;
                    continue;
                }
            }
            stats.scanned_partitions += 1;
            for &item in self.members(c) {
                if mask.binary_search(&ItemId(item)).is_ok() {
                    continue;
                }
                stats.candidates += 1;
                heap.push(Cand {
                    score: score(item),
                    item,
                });
                if heap.len() > k {
                    heap.pop();
                }
            }
        }
        let mut entries = heap.into_vec();
        entries.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.item.cmp(&b.item))
        });
        out.clear();
        out.extend(entries.iter().map(|e| (ItemId(e.item), e.score)));
        entries.clear();
        scratch.heap = entries;
        stats
    }

    /// [`rerank`](Self::rerank) for **bounded-error** (quantized) coarse
    /// scoring: `coarse` may sit up to `q.bound_slack` away from the true
    /// f32 score, `exact` is the f32 scorer. The probe/prune walk runs on
    /// coarse scores exactly like `rerank`; every scored candidate within
    /// `2·bound_slack` of the *running* k-th coarse score is buffered, the
    /// buffer is narrowed to the *final* k-th threshold, and the survivors
    /// are re-scored through `exact` into the final top-k.
    ///
    /// Soundness: for any scanned item `i` in the exact top-k of the
    /// scanned set, `coarse_i ≥ exact_i − slack ≥ exact_kth − slack ≥
    /// coarse_kth_final − 2·slack ≥ coarse_kth_at_scoring_time − 2·slack`
    /// (the running k-th only increases), so `i` is always buffered and
    /// survives the final narrowing — the answer equals `rerank` with
    /// `exact`, byte for byte, over the same scanned partitions. Partition
    /// pruning already widens by `q.bound_slack`, which keeps it
    /// conservative against the f32 geometry the rectangles describe.
    #[allow(clippy::too_many_arguments)]
    pub fn rerank_refined(
        &self,
        q: &BoxQuery<'_>,
        k: usize,
        mask: &[ItemId],
        mut coarse: impl FnMut(u32) -> f32,
        mut exact: impl FnMut(u32) -> f32,
        scratch: &mut QueryScratch,
        out: &mut Vec<(ItemId, f32)>,
    ) -> RerankStats {
        let mut stats = RerankStats::default();
        let slack2 = 2.0 * q.bound_slack;
        let mut entries = std::mem::take(&mut scratch.heap);
        entries.clear();
        entries.reserve(k + 1);
        let mut heap: BinaryHeap<Cand> = BinaryHeap::from(entries);
        let mut near = std::mem::take(&mut scratch.near);
        near.clear();
        for i in 0..scratch.probes.len() {
            let c = scratch.probes[i].2 as usize;
            if heap.len() == k {
                let kth = heap.peek().map(|e| e.score as f64).unwrap_or(f64::MIN);
                if self.rect_score_bound(q, c) < kth - PRUNE_SLACK - q.bound_slack as f64 {
                    stats.pruned_partitions += 1;
                    continue;
                }
            }
            stats.scanned_partitions += 1;
            for &item in self.members(c) {
                if mask.binary_search(&ItemId(item)).is_ok() {
                    continue;
                }
                stats.candidates += 1;
                let s = coarse(item);
                let kth_now = if heap.len() == k {
                    heap.peek().map(|e| e.score).unwrap_or(f32::NEG_INFINITY)
                } else {
                    f32::NEG_INFINITY
                };
                if s >= kth_now - slack2 {
                    near.push((s, item));
                }
                heap.push(Cand { score: s, item });
                if heap.len() > k {
                    heap.pop();
                }
            }
        }
        let final_kth = if heap.len() == k {
            heap.peek().map(|e| e.score).unwrap_or(f32::NEG_INFINITY)
        } else {
            f32::NEG_INFINITY
        };
        near.retain(|&(s, _)| s >= final_kth - slack2);
        for e in near.iter_mut() {
            e.0 = exact(e.1);
        }
        near.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        near.truncate(k);
        out.clear();
        out.extend(near.iter().map(|&(s, i)| (ItemId(i), s)));
        near.clear();
        scratch.near = near;
        let mut entries = heap.into_vec();
        entries.clear();
        scratch.heap = entries;
        stats
    }

    /// Convenience single-call query (tests and offline tools; the engine
    /// calls the two stages separately to attribute them to spans).
    #[allow(clippy::too_many_arguments)]
    pub fn query(
        &self,
        q: &BoxQuery<'_>,
        nprobe: usize,
        k: usize,
        mask: &[ItemId],
        score: impl FnMut(u32) -> f32,
        scratch: &mut QueryScratch,
        out: &mut Vec<(ItemId, f32)>,
    ) -> RerankStats {
        self.select_probes(q, nprobe, scratch);
        self.rerank(q, k, mask, score, scratch, out)
    }
}

fn nearest_centroid_l1(centroids: &[f32], dim: usize, row: &[f32]) -> u32 {
    let mut best = 0u32;
    let mut best_d = f32::MAX;
    for (c, cen) in centroids.chunks_exact(dim).enumerate() {
        let mut d = 0.0f32;
        for k in 0..dim {
            d += (row[k] - cen[k]).abs();
        }
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    best
}

fn farthest_item(items: &[f32], dim: usize, centroids: &[f32], assign: &[u32]) -> usize {
    let mut far = 0usize;
    let mut far_d = f32::MIN;
    for (i, row) in items.chunks_exact(dim).enumerate() {
        let c = assign[i] as usize;
        let cen = &centroids[c * dim..(c + 1) * dim];
        let mut d = 0.0f32;
        for k in 0..dim {
            d += (row[k] - cen[k]).abs();
        }
        if d > far_d {
            far_d = d;
            far = i;
        }
    }
    far
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    /// The exact per-item score the engine's full sort computes.
    fn exact_score(items: &[f32], dim: usize, item: u32, q: &BoxQuery<'_>) -> f32 {
        let row = &items[item as usize * dim..(item as usize + 1) * dim];
        let mut out = 0.0f32;
        let mut inside = 0.0f32;
        for (k, &p) in row.iter().enumerate() {
            out += (p - q.hi[k]).max(0.0) + (q.lo[k] - p).max(0.0);
            inside += (q.cen[k] - p.clamp(q.lo[k], q.hi[k])).abs();
        }
        q.gamma - (out + q.inside_weight * inside)
    }

    fn full_sort(
        items: &[f32],
        dim: usize,
        q: &BoxQuery<'_>,
        mask: &[ItemId],
        k: usize,
    ) -> Vec<(ItemId, f32)> {
        let n = items.len() / dim;
        let mut scored: Vec<(ItemId, f32)> = (0..n as u32)
            .filter(|i| mask.binary_search(&ItemId(*i)).is_err())
            .map(|i| (ItemId(i), exact_score(items, dim, i, q)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    fn box_of(cen: Vec<f32>, half: f32) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let lo = cen.iter().map(|c| c - half).collect();
        let hi = cen.iter().map(|c| c + half).collect();
        (lo, hi, cen)
    }

    #[test]
    fn build_partitions_every_item_exactly_once() {
        let dim = 4;
        let items = random_items(300, dim, 1);
        let ix = IvfIndex::build(
            &items,
            dim,
            &IvfParams {
                nlist: 12,
                ..Default::default()
            },
        )
        .expect("build");
        assert_eq!(ix.nlist(), 12);
        assert_eq!(ix.n_items(), 300);
        let mut seen = vec![false; 300];
        for c in 0..ix.nlist() {
            for &m in ix.members(c) {
                assert!(!seen[m as usize], "item {m} in two partitions");
                seen[m as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every item indexed");
    }

    #[test]
    fn build_is_deterministic() {
        let items = random_items(200, 3, 7);
        let p = IvfParams {
            nlist: 9,
            ..Default::default()
        };
        let a = IvfIndex::build(&items, 3, &p).unwrap();
        let b = IvfIndex::build(&items, 3, &p).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.members, b.members);
        assert_eq!(a.offsets, b.offsets);
    }

    #[test]
    fn rects_bound_their_members() {
        let dim = 5;
        let items = random_items(400, dim, 3);
        let ix = IvfIndex::build(
            &items,
            dim,
            &IvfParams {
                nlist: 16,
                ..Default::default()
            },
        )
        .unwrap();
        for c in 0..ix.nlist() {
            for &m in ix.members(c) {
                let row = &items[m as usize * dim..(m as usize + 1) * dim];
                for (k, &v) in row.iter().enumerate() {
                    assert!(ix.rect_lo[c * dim + k] <= v);
                    assert!(ix.rect_hi[c * dim + k] >= v);
                }
            }
        }
    }

    #[test]
    fn bad_shapes_are_rejected() {
        assert!(matches!(
            IvfIndex::build(&[1.0, 2.0, 3.0], 2, &IvfParams::default()),
            Err(BuildError::BadShape { .. })
        ));
        assert!(matches!(
            IvfIndex::build(&[], 2, &IvfParams::default()),
            Err(BuildError::BadShape { .. })
        ));
        assert!(IvfIndex::build(&[1.0, 2.0], 0, &IvfParams::default()).is_err());
    }

    #[test]
    fn rect_bound_dominates_member_scores() {
        let dim = 6;
        let items = random_items(500, dim, 11);
        let ix = IvfIndex::build(
            &items,
            dim,
            &IvfParams {
                nlist: 20,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let cen: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let (lo, hi, cen) = box_of(cen, rng.gen_range(0.0..1.0));
            let q = BoxQuery {
                lo: &lo,
                hi: &hi,
                cen: &cen,
                inside_weight: 0.5,
                gamma: 12.0,
                bound_slack: 0.0,
            };
            for c in 0..ix.nlist() {
                let bound = ix.rect_score_bound(&q, c);
                for &m in ix.members(c) {
                    let s = exact_score(&items, dim, m, &q) as f64;
                    assert!(
                        s <= bound + PRUNE_SLACK,
                        "partition {c} item {m}: score {s} above bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn probing_everything_matches_full_sort_bitwise() {
        let dim = 8;
        let items = random_items(600, dim, 23);
        let ix = IvfIndex::build(
            &items,
            dim,
            &IvfParams {
                nlist: 24,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        for case in 0..40 {
            let cen: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let (lo, hi, cen) = box_of(cen, rng.gen_range(0.0..1.5));
            let q = BoxQuery {
                lo: &lo,
                hi: &hi,
                cen: &cen,
                inside_weight: 0.5,
                gamma: 12.0,
                bound_slack: 0.0,
            };
            // A sorted mask of ~5% of the catalog.
            let mask: Vec<ItemId> = (0..600u32)
                .filter(|_| rng.gen_bool(0.05))
                .map(ItemId)
                .collect();
            let k = 20;
            let expected = full_sort(&items, dim, &q, &mask, k);
            let stats = ix.query(
                &q,
                ix.nlist(),
                k,
                &mask,
                |i| exact_score(&items, dim, i, &q),
                &mut scratch,
                &mut out,
            );
            assert_eq!(out.len(), expected.len(), "case {case}");
            for (got, want) in out.iter().zip(&expected) {
                assert_eq!(got.0, want.0, "case {case}");
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "case {case}");
            }
            assert_eq!(
                stats.scanned_partitions + stats.pruned_partitions,
                ix.nlist(),
                "every probed partition is either scanned or pruned"
            );
        }
    }

    #[test]
    fn refined_rerank_recovers_exact_topk_under_bounded_coarse_noise() {
        // Coarse scores perturbed by up to `slack` per item must still
        // yield the exact-top-k answer, bit for bit, once the refine pass
        // re-scores the near-threshold candidates exactly — the index-level
        // statement of the bounded-error ranking oracle.
        let dim = 6;
        let n = 500u32;
        let items = random_items(n as usize, dim, 17);
        let ix = IvfIndex::build(
            &items,
            dim,
            &IvfParams {
                nlist: 20,
                ..Default::default()
            },
        )
        .unwrap();
        let slack = 0.05f32;
        // Deterministic per-item perturbation in [-slack, slack].
        let wobble = |i: u32| {
            let h = i.wrapping_mul(2654435761) >> 16;
            ((h & 0xffff) as f32 / 65535.0 - 0.5) * 2.0 * slack
        };
        let mut rng = StdRng::seed_from_u64(31);
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        for case in 0..40 {
            let cen: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let (lo, hi, cen) = box_of(cen, rng.gen_range(0.0..1.5));
            let q = BoxQuery {
                lo: &lo,
                hi: &hi,
                cen: &cen,
                inside_weight: 0.5,
                gamma: 12.0,
                bound_slack: slack,
            };
            let mask: Vec<ItemId> = (0..n).filter(|_| rng.gen_bool(0.05)).map(ItemId).collect();
            let k = 20;
            let expected = full_sort(&items, dim, &q, &mask, k);
            ix.select_probes(&q, ix.nlist(), &mut scratch);
            ix.rerank_refined(
                &q,
                k,
                &mask,
                |i| exact_score(&items, dim, i, &q) + wobble(i),
                |i| exact_score(&items, dim, i, &q),
                &mut scratch,
                &mut out,
            );
            assert_eq!(out.len(), expected.len(), "case {case}");
            for (got, want) in out.iter().zip(&expected) {
                assert_eq!(got.0, want.0, "case {case}");
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "case {case}");
            }
        }
    }

    #[test]
    fn pruning_actually_skips_partitions() {
        // A tight box far from most of the catalog must prune partitions.
        let dim = 4;
        let items = random_items(800, dim, 41);
        let ix = IvfIndex::build(
            &items,
            dim,
            &IvfParams {
                nlist: 32,
                ..Default::default()
            },
        )
        .unwrap();
        let (lo, hi, cen) = box_of(vec![1.8; dim], 0.05);
        let q = BoxQuery {
            lo: &lo,
            hi: &hi,
            cen: &cen,
            inside_weight: 0.5,
            gamma: 12.0,
            bound_slack: 0.0,
        };
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        let stats = ix.query(
            &q,
            ix.nlist(),
            5,
            &[],
            |i| exact_score(&items, dim, i, &q),
            &mut scratch,
            &mut out,
        );
        assert!(
            stats.pruned_partitions > 0,
            "corner box pruned nothing: {stats:?}"
        );
        assert!(stats.candidates < 800, "pruning reduced the scan");
    }

    #[test]
    fn mode_parsing_and_auto_params() {
        assert_eq!(IndexMode::parse("full"), Some(IndexMode::FullSort));
        assert_eq!(IndexMode::parse("FULL-SORT"), Some(IndexMode::FullSort));
        assert_eq!(
            IndexMode::parse("ivf"),
            Some(IndexMode::Ivf {
                nlist: 0,
                nprobe: 0
            })
        );
        assert_eq!(IndexMode::parse("rtree"), None);
        assert_eq!(IndexMode::default(), IndexMode::FullSort);

        let nlist = auto_nlist(40_000);
        assert_eq!(nlist, 400);
        assert_eq!(auto_nprobe(nlist), 50);
        assert_eq!(auto_nprobe(8), 4);
        assert_eq!(auto_nprobe(2), 2, "nprobe never exceeds nlist");
        assert!(auto_nlist(1) == 1);
    }

    #[test]
    fn small_catalogs_clamp_nlist() {
        let items = random_items(5, 2, 1);
        let ix = IvfIndex::build(
            &items,
            2,
            &IvfParams {
                nlist: 64,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(ix.nlist(), 5);
        let ix = IvfIndex::build(
            &items,
            2,
            &IvfParams {
                nlist: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(ix.nlist() >= 1 && ix.nlist() <= 5);
    }
}
