//! `inbox-eval` — evaluation protocol and analysis tooling for the InBox
//! reproduction.
//!
//! Implements the all-ranking protocol of Section 4.1.2 (`recall@K`,
//! `ndcg@K` with train-item masking, averaged over test users), a
//! model-agnostic [`Scorer`] trait shared by InBox and every baseline, and
//! the PCA + cluster-separation analysis behind Figure 5.

#![warn(missing_docs)]

mod beyond;
mod metrics;
pub mod pca;

pub use beyond::{beyond_accuracy, gini, intra_list_similarity, BeyondAccuracy};
pub use metrics::{
    default_threads, evaluate, evaluate_with_threads, top_k_masked, top_k_masked_into,
    user_metrics, RankingMetrics, Scorer, TopKScratch,
};
pub use pca::{
    centroid_separation, mean_pairwise_distance, separation, CentroidSeparation, Pca, Separation,
};
