//! The all-ranking evaluation protocol of Section 4.1.2.
//!
//! For each target user, *every* item the user has not interacted with in
//! training is a candidate; the user's held-out test items are the positives.
//! Candidates are ranked by model score and `recall@K` / `ndcg@K` are
//! averaged over all users with a non-empty test set (K = 20 by default, as
//! in the paper).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use inbox_data::Interactions;
use inbox_kg::{ItemId, UserId};

/// A recommendation model that can score every item for a user.
///
/// `score_items` must return one score per item (higher = better). The
/// evaluation harness masks train items itself, so implementations can score
/// everything unconditionally.
pub trait Scorer: Sync {
    /// Scores all items for `user`; the returned vector has `n_items` entries.
    fn score_items(&self, user: UserId) -> Vec<f32>;
}

impl<F> Scorer for F
where
    F: Fn(UserId) -> Vec<f32> + Sync,
{
    fn score_items(&self, user: UserId) -> Vec<f32> {
        self(user)
    }
}

/// `recall@K` and `ndcg@K` averaged over evaluated users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingMetrics {
    /// Average recall at the configured cutoff.
    pub recall: f64,
    /// Average NDCG at the configured cutoff.
    pub ndcg: f64,
    /// Number of users that contributed (non-empty test set).
    pub n_users_evaluated: usize,
}

impl std::fmt::Display for RankingMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recall {:.4}, ndcg {:.4} ({} users)",
            self.recall, self.ndcg, self.n_users_evaluated
        )
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    score: f32,
    item: ItemId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // The heap pops its max, which must be the *worst* entry: lowest
        // score, ties broken toward the largest item id (so smaller ids
        // survive and results are deterministic).
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.item.cmp(&other.item))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable buffer for [`top_k_masked_into`]: after a warm-up call the
/// selection runs without allocating (the heap's backing storage round-
/// trips through the scratch between calls).
#[derive(Default)]
pub struct TopKScratch {
    entries: Vec<HeapEntry>,
}

/// Selects the top-`k` items by score among candidates not in `mask`,
/// ordered best-first. Ties are broken toward smaller item ids.
pub fn top_k_masked(scores: &[f32], mask: &[ItemId], k: usize) -> Vec<ItemId> {
    let mut scratch = TopKScratch::default();
    let mut out = Vec::new();
    top_k_masked_into(scores, mask, k, &mut scratch, &mut out);
    out
}

/// [`top_k_masked`] writing into caller-owned buffers: identical output
/// (the comparator is a strict total order — item ids are distinct — so
/// the unstable sort is deterministic), but steady-state allocation-free
/// once `scratch` and `out` have warmed to capacity `k + 1` / `k`.
pub fn top_k_masked_into(
    scores: &[f32],
    mask: &[ItemId],
    k: usize,
    scratch: &mut TopKScratch,
    out: &mut Vec<ItemId>,
) {
    let mut entries = std::mem::take(&mut scratch.entries);
    entries.clear();
    entries.reserve(k + 1);
    // Heapifying an empty Vec is free; the push/pop cadence below keeps the
    // length at most k + 1, inside the reserved capacity.
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::from(entries);
    for (idx, &score) in scores.iter().enumerate() {
        let item = ItemId(idx as u32);
        if mask.binary_search(&item).is_ok() {
            continue;
        }
        heap.push(HeapEntry { score, item });
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut entries = heap.into_vec();
    entries.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.item.cmp(&b.item))
    });
    out.clear();
    out.extend(entries.iter().map(|e| e.item));
    // Hand the backing storage (and its capacity) back for the next call.
    scratch.entries = entries;
}

/// Computes `recall@K` and `ndcg@K` for one user given the ranked top-K and
/// the (sorted) positive test items.
pub fn user_metrics(top_k: &[ItemId], test_items: &[ItemId]) -> (f64, f64) {
    if test_items.is_empty() {
        return (0.0, 0.0);
    }
    let mut hits = 0usize;
    let mut dcg = 0.0f64;
    for (rank, item) in top_k.iter().enumerate() {
        if test_items.binary_search(item).is_ok() {
            hits += 1;
            dcg += 1.0 / ((rank + 2) as f64).log2();
        }
    }
    let ideal = test_items.len().min(top_k.len());
    let idcg: f64 = (0..ideal).map(|r| 1.0 / ((r + 2) as f64).log2()).sum();
    let recall = hits as f64 / test_items.len() as f64;
    let ndcg = if idcg > 0.0 { dcg / idcg } else { 0.0 };
    (recall, ndcg)
}

/// Evaluates a scorer over all test users with the all-ranking protocol,
/// parallelised over users.
pub fn evaluate(
    scorer: &dyn Scorer,
    train: &Interactions,
    test: &Interactions,
    k: usize,
) -> RankingMetrics {
    evaluate_with_threads(scorer, train, test, k, default_threads())
}

/// Number of worker threads used by [`evaluate`].
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// [`evaluate`] with an explicit thread count (1 = sequential).
pub fn evaluate_with_threads(
    scorer: &dyn Scorer,
    train: &Interactions,
    test: &Interactions,
    k: usize,
    threads: usize,
) -> RankingMetrics {
    assert_eq!(
        train.n_users(),
        test.n_users(),
        "split user universes differ"
    );
    let users: Vec<UserId> = (0..test.n_users() as u32)
        .map(UserId)
        .filter(|u| !test.items_of(*u).is_empty())
        .collect();
    if users.is_empty() {
        return RankingMetrics {
            recall: 0.0,
            ndcg: 0.0,
            n_users_evaluated: 0,
        };
    }

    let eval_user = |u: UserId| -> (f64, f64) {
        let scores = scorer.score_items(u);
        debug_assert_eq!(scores.len(), train.n_items());
        let top = top_k_masked(&scores, train.items_of(u), k);
        user_metrics(&top, test.items_of(u))
    };

    // "eval.rank" measures the whole ranking pass; "eval.rank.worker" gets
    // one interval per worker thread (one for the whole pass when
    // sequential), so the span histogram exposes per-thread throughput and
    // straggler spread. The counter tracks total users ranked.
    let ranked = inbox_obs::counter("eval.users.ranked");
    let span = inbox_obs::span("eval.rank");
    let results: Vec<(f64, f64)> = if threads <= 1 || users.len() < 32 {
        let worker = inbox_obs::span("eval.rank.worker");
        let out: Vec<(f64, f64)> = users.iter().map(|&u| eval_user(u)).collect();
        worker.stop();
        ranked.add(users.len() as u64);
        out
    } else {
        let chunk = users.len().div_ceil(threads);
        let mut results = vec![(0.0, 0.0); users.len()];
        let ranked = &ranked;
        crossbeam::thread::scope(|s| {
            for (slice_users, slice_out) in users.chunks(chunk).zip(results.chunks_mut(chunk)) {
                s.spawn(move |_| {
                    let worker = inbox_obs::span("eval.rank.worker");
                    for (u, out) in slice_users.iter().zip(slice_out.iter_mut()) {
                        *out = eval_user(*u);
                    }
                    worker.stop();
                    ranked.add(slice_users.len() as u64);
                });
            }
        })
        .expect("evaluation worker panicked");
        results
    };
    span.stop();

    let n = results.len();
    let (recall_sum, ndcg_sum) = results
        .iter()
        .fold((0.0, 0.0), |(r, n2), &(ru, nu)| (r + ru, n2 + nu));
    RankingMetrics {
        recall: recall_sum / n as f64,
        ndcg: ndcg_sum / n as f64,
        n_users_evaluated: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_masks_and_orders() {
        let scores = vec![0.1, 0.9, 0.5, 0.7, 0.3];
        let mask = vec![ItemId(1)];
        let top = top_k_masked(&scores, &mask, 3);
        assert_eq!(top, vec![ItemId(3), ItemId(2), ItemId(4)]);
    }

    #[test]
    fn top_k_tie_break_is_by_item_id() {
        let scores = vec![0.5, 0.5, 0.5, 0.5];
        let top = top_k_masked(&scores, &[], 2);
        assert_eq!(top, vec![ItemId(0), ItemId(1)]);
    }

    #[test]
    fn top_k_into_matches_allocating_variant_and_reuses_capacity() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut scratch = TopKScratch::default();
        let mut out = Vec::new();
        for trial in 0..50 {
            let n = 1 + (trial * 7) % 200;
            let scores: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut mask: Vec<ItemId> = (0..n as u32)
                .filter(|_| rng.gen_bool(0.2))
                .map(ItemId)
                .collect();
            mask.sort_unstable();
            let k = 1 + trial % 25;
            let reference = top_k_masked(&scores, &mask, k);
            top_k_masked_into(&scores, &mask, k, &mut scratch, &mut out);
            assert_eq!(out, reference, "trial {trial} diverged");
        }
        // Ties too: identical scores must order by item id either way.
        let scores = vec![0.5f32; 40];
        let reference = top_k_masked(&scores, &[], 10);
        top_k_masked_into(&scores, &[], 10, &mut scratch, &mut out);
        assert_eq!(out, reference);
        // The scratch retains its backing capacity between calls.
        let cap = scratch.entries.capacity();
        top_k_masked_into(&scores, &[], 10, &mut scratch, &mut out);
        assert_eq!(scratch.entries.capacity(), cap);
    }

    #[test]
    fn top_k_handles_k_larger_than_candidates() {
        let scores = vec![0.2, 0.8];
        let top = top_k_masked(&scores, &[], 10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], ItemId(1));
    }

    #[test]
    fn user_metrics_perfect_ranking() {
        let test_items = vec![ItemId(1), ItemId(2)];
        let top = vec![ItemId(1), ItemId(2), ItemId(3)];
        let (recall, ndcg) = user_metrics(&top, &test_items);
        assert_eq!(recall, 1.0);
        assert!((ndcg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn user_metrics_partial_hit() {
        let test_items = vec![ItemId(1), ItemId(5)];
        let top = vec![ItemId(0), ItemId(1)]; // hit at rank 2
        let (recall, ndcg) = user_metrics(&top, &test_items);
        assert_eq!(recall, 0.5);
        // DCG = 1/log2(3); IDCG = 1/log2(2) + 1/log2(3)
        let dcg = 1.0 / 3f64.log2();
        let idcg = 1.0 + 1.0 / 3f64.log2();
        assert!((ndcg - dcg / idcg).abs() < 1e-12);
    }

    #[test]
    fn user_metrics_no_hits_or_empty() {
        let (r, n) = user_metrics(&[ItemId(0)], &[ItemId(9)]);
        assert_eq!((r, n), (0.0, 0.0));
        let (r, n) = user_metrics(&[ItemId(0)], &[]);
        assert_eq!((r, n), (0.0, 0.0));
    }

    fn toy_split() -> (Interactions, Interactions) {
        // 2 users, 4 items. User 0 trained on {0}, tests {1}. User 1 trained
        // on {2}, tests {3}.
        let train =
            Interactions::from_pairs(2, 4, vec![(UserId(0), ItemId(0)), (UserId(1), ItemId(2))])
                .unwrap();
        let test =
            Interactions::from_pairs(2, 4, vec![(UserId(0), ItemId(1)), (UserId(1), ItemId(3))])
                .unwrap();
        (train, test)
    }

    #[test]
    fn evaluate_oracle_scorer_is_perfect() {
        let (train, test) = toy_split();
        // Oracle: score the test item highest.
        let scorer = |u: UserId| -> Vec<f32> {
            let mut s = vec![0.0f32; 4];
            match u {
                UserId(0) => s[1] = 1.0,
                _ => s[3] = 1.0,
            }
            s
        };
        let m = evaluate(&scorer, &train, &test, 2);
        assert_eq!(m.n_users_evaluated, 2);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.ndcg, 1.0);
    }

    #[test]
    fn evaluate_adversarial_scorer_is_zero_at_k1() {
        let (train, test) = toy_split();
        // Anti-oracle: score the test item lowest. With k=1 nothing is found.
        let scorer = |u: UserId| -> Vec<f32> {
            let mut s = vec![1.0f32; 4];
            match u {
                UserId(0) => s[1] = 0.0,
                _ => s[3] = 0.0,
            }
            s
        };
        let m = evaluate(&scorer, &train, &test, 1);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.ndcg, 0.0);
    }

    #[test]
    fn evaluate_masks_train_items() {
        let (train, test) = toy_split();
        // Constant scorer: without masking, item 0 would occupy user 0's
        // rank 1; with masking, rank 1 is item 1 (the test item).
        let scorer = |_: UserId| vec![0.0f32; 4];
        let m = evaluate(&scorer, &train, &test, 1);
        assert_eq!(
            m.recall, 0.5,
            "user 0 hits via mask+tie-break, user 1 misses"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n_users = 64;
        let n_items = 50;
        let mut train_pairs = Vec::new();
        let mut test_pairs = Vec::new();
        for u in 0..n_users {
            for _ in 0..5 {
                train_pairs.push((UserId(u), ItemId(rng.gen_range(0..n_items) as u32)));
            }
            test_pairs.push((UserId(u), ItemId(rng.gen_range(0..n_items) as u32)));
        }
        let train = Interactions::from_pairs(n_users as usize, n_items, train_pairs).unwrap();
        let test = Interactions::from_pairs(n_users as usize, n_items, test_pairs).unwrap();
        let scorer = |u: UserId| -> Vec<f32> {
            (0..n_items)
                .map(|i| ((u.0 as usize * 31 + i * 17) % 97) as f32)
                .collect()
        };
        let seq = evaluate_with_threads(&scorer, &train, &test, 20, 1);
        let par = evaluate_with_threads(&scorer, &train, &test, 20, 4);
        assert_eq!(seq, par);
    }
}
