//! Beyond-accuracy metrics: catalogue coverage and recommendation
//! concentration.
//!
//! The paper's conclusion claims box representations yield "more accurate,
//! diverse, and interpretable" recommendations; these metrics make the
//! *diverse* part measurable. They operate on the top-K lists produced for
//! each user under the same all-ranking protocol as
//! [`evaluate`](crate::evaluate).

use inbox_data::Interactions;
use inbox_kg::{ItemId, UserId};

use crate::metrics::{top_k_masked, Scorer};

/// Aggregate beyond-accuracy statistics over all users' top-K lists.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeyondAccuracy {
    /// Fraction of the catalogue that appears in at least one user's top-K.
    pub coverage: f64,
    /// Gini coefficient of recommendation counts across items
    /// (0 = perfectly even exposure, → 1 = all exposure on few items).
    pub gini: f64,
    /// Mean number of *distinct* items per user list (== K unless the
    /// catalogue is exhausted).
    pub mean_list_len: f64,
}

/// Computes coverage and exposure concentration of a scorer's top-K lists.
pub fn beyond_accuracy(
    scorer: &dyn Scorer,
    train: &Interactions,
    test: &Interactions,
    k: usize,
) -> BeyondAccuracy {
    let n_items = train.n_items();
    let mut counts = vec![0usize; n_items];
    let mut lists = 0usize;
    let mut total_len = 0usize;
    for u in 0..test.n_users() as u32 {
        let user = UserId(u);
        if test.items_of(user).is_empty() {
            continue;
        }
        let scores = scorer.score_items(user);
        let top = top_k_masked(&scores, train.items_of(user), k);
        total_len += top.len();
        lists += 1;
        for item in top {
            counts[item.index()] += 1;
        }
    }
    if lists == 0 {
        return BeyondAccuracy {
            coverage: 0.0,
            gini: 0.0,
            mean_list_len: 0.0,
        };
    }
    let covered = counts.iter().filter(|&&c| c > 0).count();
    BeyondAccuracy {
        coverage: covered as f64 / n_items as f64,
        gini: gini(&counts),
        mean_list_len: total_len as f64 / lists as f64,
    }
}

/// Gini coefficient of a non-negative count distribution.
pub fn gini(counts: &[usize]) -> f64 {
    let n = counts.len();
    if n == 0 {
        return 0.0;
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<usize> = counts.to_vec();
    sorted.sort_unstable();
    // G = (2 * Σ_i i*x_i) / (n * Σ x) - (n + 1) / n with 1-based ranks.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i + 1) as f64 * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Mean pairwise concept-overlap within a recommendation list: 1 when every
/// pair of recommended items shares all concepts, 0 when no pair shares any.
/// Lower = more diverse lists.
#[allow(clippy::needless_range_loop)]
pub fn intra_list_similarity(
    lists: &[Vec<ItemId>],
    concepts_of: impl Fn(ItemId) -> Vec<(u32, u32)>,
) -> f64 {
    let mut total = 0.0f64;
    let mut n_pairs = 0usize;
    for list in lists {
        for i in 0..list.len() {
            let ci = concepts_of(list[i]);
            for j in (i + 1)..list.len() {
                let cj = concepts_of(list[j]);
                let inter = ci.iter().filter(|c| cj.contains(c)).count();
                let union = ci.len() + cj.len() - inter;
                total += if union == 0 {
                    0.0
                } else {
                    inter as f64 / union as f64
                };
                n_pairs += 1;
            }
        }
    }
    if n_pairs == 0 {
        0.0
    } else {
        total / n_pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        // Perfectly even.
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
        // All mass on one of many items -> close to 1.
        let mut concentrated = vec![0usize; 100];
        concentrated[0] = 1000;
        assert!(gini(&concentrated) > 0.95);
        // Monotone: more concentration, higher gini.
        assert!(gini(&[1, 1, 1, 9]) > gini(&[3, 3, 3, 3]));
    }

    #[test]
    fn coverage_counts_distinct_items() {
        let train = Interactions::from_pairs(2, 5, vec![(UserId(0), ItemId(0))]).unwrap();
        let test =
            Interactions::from_pairs(2, 5, vec![(UserId(0), ItemId(1)), (UserId(1), ItemId(2))])
                .unwrap();
        // Constant scorer: each user gets the lowest-id unmasked items.
        let scorer = |_: UserId| vec![0.0f32; 5];
        let b = beyond_accuracy(&scorer, &train, &test, 2);
        // User 0 (mask {0}) -> items 1,2; user 1 -> items 0,1. Covered: {0,1,2}.
        assert!((b.coverage - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(b.mean_list_len, 2.0);
        assert!(b.gini > 0.0);
    }

    #[test]
    fn intra_list_similarity_extremes() {
        let lists = vec![vec![ItemId(0), ItemId(1)]];
        // Identical concept sets -> similarity 1.
        let same = intra_list_similarity(&lists, |_| vec![(0, 0), (1, 1)]);
        assert!((same - 1.0).abs() < 1e-12);
        // Disjoint concept sets -> similarity 0.
        let disjoint = intra_list_similarity(&lists, |i| vec![(i.0, i.0)]);
        assert_eq!(disjoint, 0.0);
        // Empty lists -> 0.
        assert_eq!(intra_list_similarity(&[], |_| vec![]), 0.0);
    }
}
