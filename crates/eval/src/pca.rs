//! Principal component analysis and cluster-separation statistics for the
//! Figure 5 reproduction.
//!
//! The paper projects learned item embeddings to 2-D with PCA and shows that
//! items sharing a relation-tag concept cluster together while random items
//! scatter. This module provides a dependency-free PCA (covariance matrix +
//! cyclic Jacobi eigendecomposition) plus a quantitative separation score so
//! the "clusters are tighter than random" claim is testable, not just
//! eyeballable.

/// Result of a PCA fit: the top principal axes and data mean.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `components[k]` is the k-th principal axis (unit length, d entries).
    components: Vec<Vec<f64>>,
    /// Eigenvalue (explained variance) of each kept component.
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits a PCA on `points` (each of dimension `d`) keeping `n_components`
    /// axes. Panics if `points` is empty or dimensions are inconsistent.
    #[allow(clippy::needless_range_loop)] // symmetric-matrix index loops
    pub fn fit(points: &[Vec<f32>], n_components: usize) -> Self {
        assert!(!points.is_empty(), "PCA requires at least one point");
        let d = points[0].len();
        assert!(points.iter().all(|p| p.len() == d), "inconsistent dims");
        let n = points.len() as f64;
        let mut mean = vec![0.0f64; d];
        for p in points {
            for (m, &x) in mean.iter_mut().zip(p) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        // Covariance matrix (d x d, symmetric).
        let mut cov = vec![vec![0.0f64; d]; d];
        for p in points {
            for i in 0..d {
                let di = p[i] as f64 - mean[i];
                for j in i..d {
                    let dj = p[j] as f64 - mean[j];
                    cov[i][j] += di * dj;
                }
            }
        }
        let denom = if points.len() > 1 { n - 1.0 } else { 1.0 };
        for i in 0..d {
            for j in i..d {
                cov[i][j] /= denom;
                cov[j][i] = cov[i][j];
            }
        }
        let (eigenvalues, eigenvectors) = jacobi_eigen(cov);
        let keep = n_components.min(d);
        let components = (0..keep).map(|k| eigenvectors[k].clone()).collect();
        let eigenvalues = eigenvalues.into_iter().take(keep).collect();
        Self {
            mean,
            components,
            eigenvalues,
        }
    }

    /// Projects a point onto the kept components.
    pub fn transform(&self, point: &[f32]) -> Vec<f64> {
        assert_eq!(point.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|axis| {
                axis.iter()
                    .zip(point.iter().zip(&self.mean))
                    .map(|(&a, (&x, &m))| a * (x as f64 - m))
                    .sum()
            })
            .collect()
    }

    /// Projects a batch of points.
    pub fn transform_all(&self, points: &[Vec<f32>]) -> Vec<Vec<f64>> {
        points.iter().map(|p| self.transform(p)).collect()
    }

    /// Explained variance of each kept component, largest first.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix. Returns
/// `(eigenvalues, eigenvectors)` sorted by descending eigenvalue; each
/// eigenvector is a row.
#[allow(clippy::needless_range_loop)] // plane rotations index two columns at once
fn jacobi_eigen(mut a: Vec<Vec<f64>>) -> (Vec<f64>, Vec<Vec<f64>>) {
    let d = a.len();
    let mut v = vec![vec![0.0f64; d]; d];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for i in 0..d {
            for j in (i + 1)..d {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-20 {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                if a[p][q].abs() < 1e-30 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..d {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..d {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..d).collect();
    order.sort_by(|&i, &j| a[j][j].partial_cmp(&a[i][i]).unwrap());
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a[i][i]).collect();
    let eigenvectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| (0..d).map(|row| v[row][col]).collect())
        .collect();
    (eigenvalues, eigenvectors)
}

/// Mean pairwise Euclidean distance within a point set (0 for fewer than 2
/// points).
pub fn mean_pairwise_distance(points: &[Vec<f64>]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            total += euclidean(&points[i], &points[j]);
            count += 1;
        }
    }
    total / count as f64
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Separation statistics between a concept cluster ("red" points in
/// Figure 5) and a random background ("blue" points).
#[derive(Debug, Clone, Copy)]
pub struct Separation {
    /// Mean pairwise distance within the concept cluster.
    pub intra_concept: f64,
    /// Mean pairwise distance within the random background.
    pub intra_random: f64,
    /// `intra_random / intra_concept` — above 1 means the concept cluster is
    /// tighter than random, which is the qualitative claim of Figure 5.
    pub tightness_ratio: f64,
}

/// Computes the [`Separation`] between projected concept items and random
/// items.
pub fn separation(concept_points: &[Vec<f64>], random_points: &[Vec<f64>]) -> Separation {
    let intra_concept = mean_pairwise_distance(concept_points);
    let intra_random = mean_pairwise_distance(random_points);
    let tightness_ratio = if intra_concept > 0.0 {
        intra_random / intra_concept
    } else {
        f64::INFINITY
    };
    Separation {
        intra_concept,
        intra_random,
        tightness_ratio,
    }
}

/// Centroid-based separation — the statistic matching Figure 5's visual
/// claim directly: concept items ("red") form a blob around their own
/// centroid while random items ("blue") scatter *relative to that blob*.
#[derive(Debug, Clone, Copy)]
pub struct CentroidSeparation {
    /// Mean distance of concept items to the concept centroid.
    pub concept_to_centroid: f64,
    /// Mean distance of random items to the *concept* centroid.
    pub random_to_centroid: f64,
    /// `random_to_centroid / concept_to_centroid` — above 1 means the
    /// concept items cluster around their centroid more than background
    /// items do.
    pub ratio: f64,
}

/// Computes [`CentroidSeparation`] between concept and random point sets.
/// Panics if `concept_points` is empty.
pub fn centroid_separation(
    concept_points: &[Vec<f64>],
    random_points: &[Vec<f64>],
) -> CentroidSeparation {
    assert!(
        !concept_points.is_empty(),
        "need at least one concept point"
    );
    let dim = concept_points[0].len();
    let mut centroid = vec![0.0f64; dim];
    for p in concept_points {
        for (c, &x) in centroid.iter_mut().zip(p) {
            *c += x;
        }
    }
    for c in &mut centroid {
        *c /= concept_points.len() as f64;
    }
    let mean_dist = |points: &[Vec<f64>]| -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        points.iter().map(|p| euclidean(p, &centroid)).sum::<f64>() / points.len() as f64
    };
    let concept_to_centroid = mean_dist(concept_points);
    let random_to_centroid = mean_dist(random_points);
    let ratio = if concept_to_centroid > 0.0 {
        random_to_centroid / concept_to_centroid
    } else {
        f64::INFINITY
    };
    CentroidSeparation {
        concept_to_centroid,
        random_to_centroid,
        ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pca_recovers_dominant_axis() {
        // Points along the direction (1, 1, 0) with small noise.
        let mut rng = StdRng::seed_from_u64(1);
        let points: Vec<Vec<f32>> = (0..200)
            .map(|_| {
                let t: f32 = rng.gen_range(-5.0f32..5.0);
                vec![
                    t + rng.gen_range(-0.01f32..0.01),
                    t + rng.gen_range(-0.01f32..0.01),
                    rng.gen_range(-0.01f32..0.01),
                ]
            })
            .collect();
        let pca = Pca::fit(&points, 2);
        let axis = &pca.components[0];
        // First axis ~ (1,1,0)/sqrt(2): |x| == |y| >> |z|.
        assert!((axis[0].abs() - axis[1].abs()).abs() < 0.05, "{axis:?}");
        assert!(axis[2].abs() < 0.05, "{axis:?}");
        assert!(pca.eigenvalues()[0] > 10.0 * pca.eigenvalues()[1]);
    }

    #[test]
    fn pca_projection_centers_data() {
        let points = vec![vec![1.0f32, 0.0], vec![3.0, 0.0]];
        let pca = Pca::fit(&points, 1);
        let proj = pca.transform_all(&points);
        // Projections are symmetric around 0 with distance 2 between them.
        assert!((proj[0][0] + proj[1][0]).abs() < 1e-9);
        assert!(((proj[0][0] - proj[1][0]).abs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_diagonalises_known_matrix() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let (vals, vecs) = jacobi_eigen(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // Eigenvector of 3 is (1,1)/sqrt(2).
        let v = &vecs[0];
        assert!((v[0].abs() - v[1].abs()).abs() < 1e-9);
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn separation_detects_tight_cluster() {
        let mut rng = StdRng::seed_from_u64(2);
        let tight: Vec<Vec<f64>> = (0..30)
            .map(|_| vec![rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1)])
            .collect();
        let spread: Vec<Vec<f64>> = (0..30)
            .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
            .collect();
        let sep = separation(&tight, &spread);
        assert!(sep.tightness_ratio > 5.0, "{sep:?}");
    }

    #[test]
    fn mean_pairwise_edge_cases() {
        assert_eq!(mean_pairwise_distance(&[]), 0.0);
        assert_eq!(mean_pairwise_distance(&[vec![1.0, 2.0]]), 0.0);
        let two = vec![vec![0.0, 0.0], vec![3.0, 4.0]];
        assert!((mean_pairwise_distance(&two) - 5.0).abs() < 1e-12);
    }
}
