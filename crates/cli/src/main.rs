//! `inbox` — command-line interface for the InBox reproduction.
//!
//! ```text
//! inbox stats     --preset lastfm | --data DIR
//! inbox export    --preset lastfm --out DIR [--seed N]
//! inbox train     --preset lastfm | --data DIR  --out model.json
//!                 [--dim 32] [--epochs1 40] [--epochs2 25] [--epochs3 40]
//!                 [--lr 0.02] [--seed 42] [--maxmin] [--quick]
//! inbox evaluate  --model model.json (--preset P | --data DIR) [--k 20]
//! inbox recommend --model model.json (--preset P | --data DIR) --user 3 [--k 10] [--explain]
//! inbox serve     --model model.json (--preset P | --data DIR) [--addr HOST:PORT]
//!                 [--batch-max 32] [--batch-wait-us 500] [--queue-cap 1024]
//!                 [--cache-cap 100000] [--threads 1] [--slo-ms 50]
//!                 [--trace-slow-ms 250] [--smoke]
//! inbox obs       [--addr HOST:PORT] [--interval-ms 1000] [--iters 0]
//! inbox profile   [--addr HOST:PORT] [--out FILE]
//! ```
//!
//! Every subcommand also accepts `--log-level quiet|info|debug` (console
//! verbosity) and `--metrics-out PATH` (JSONL telemetry: per-epoch training
//! records plus a final span/counter summary).
//!
//! `--preset` generates a synthetic dataset twin (`tiny`, `small`, `lastfm`,
//! `yelp`, `ifashion`, `amazon`); `--data` loads a KGIN-format directory
//! (`train.txt` / `test.txt` / `kg_final.txt`).

mod args;
mod commands;

use args::Parsed;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Parsed::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = commands::init_observability(&parsed) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let result = match parsed.command.as_str() {
        "stats" => commands::stats(&parsed),
        "export" => commands::export(&parsed),
        "train" => commands::train(&parsed),
        "evaluate" => commands::evaluate(&parsed),
        "recommend" => commands::recommend(&parsed),
        "serve" => commands::serve(&parsed),
        "obs" => commands::obs(&parsed),
        "profile" => commands::profile(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => {
            eprintln!("error: unknown subcommand {other:?}\n");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    inbox_obs::flush_sinks();
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
