//! Subcommand implementations for the `inbox` CLI.

use std::error::Error;
use std::io::Write as _;
use std::sync::{Arc, OnceLock};

use inbox_core::interpret::{explain, format_explanation};
use inbox_core::{persist, InBoxConfig, IntersectionMode};
use inbox_data::{Dataset, SyntheticConfig};
use inbox_eval::{beyond_accuracy, Scorer};
use inbox_kg::UserId;
use inbox_obs::{ConsoleSink, JsonlSink, Verbosity};
use inbox_serve::{Engine, HttpServer, ServeConfig, Service};

use crate::args::Parsed;

/// CLI usage text.
pub const USAGE: &str = "\
inbox — InBox interest-box recommendation (VLDB 2024 reproduction)

USAGE:
  inbox stats     (--preset P | --data DIR) [--seed N]
  inbox export    --preset P --out DIR [--seed N]
  inbox train     (--preset P | --data DIR) --out MODEL.json
                  [--dim 32] [--epochs1 40] [--epochs2 25] [--epochs3 40]
                  [--lr 0.02] [--seed 42] [--maxmin] [--quick]
  inbox evaluate  --model MODEL.json (--preset P | --data DIR) [--k 20]
  inbox recommend --model MODEL.json (--preset P | --data DIR) --user U
                  [--k 10] [--explain]
  inbox serve     --model MODEL.json (--preset P | --data DIR)
                  [--addr 127.0.0.1:7878] [--batch-max 32] [--batch-wait-us 500]
                  [--queue-cap 1024] [--cache-cap 100000] [--threads 1]
                  [--slo-ms 50] [--trace-slow-ms 250] [--trace-sample 1]
                  [--index full|ivf] [--nlist 0] [--nprobe 0] (0 = auto)
                  [--quantize none|int8] [--smoke]
                  [--audit-sample 32] [--audit-queue-cap 256] [--audit-floor F]
                  (shadow-oracle audit: re-rank 1-in-N answers through the
                   exact full-sort oracle; 0 disables; --audit-floor arms the
                   degradation alert on windowed audit recall)
  inbox obs       [--addr 127.0.0.1:7878] [--interval-ms 1000] [--iters 0]
                  live dashboard over a running server's GET /metrics
                  (qps, p99, cache hit rate, queue depth, shed rate, SLO burn,
                  allocs/s, hottest contended lock, audit recall + drift PSI)
  inbox profile   [--addr 127.0.0.1:7878] [--out FILE]
                  fetch a running server's folded-stack profile (GET /profile)
                  and print it — pipe into flamegraph.pl for an SVG flamegraph

GLOBAL FLAGS:
  --log-level quiet|info|debug   console verbosity (default info); quiet
                                 suppresses all non-error output
  --metrics-out PATH             write telemetry (one JSON object per line:
                                 per-epoch records + final span summary)

Presets: tiny | small | lastfm | yelp | ifashion | amazon
Data dirs use the KGIN format: train.txt, test.txt, kg_final.txt";

type CmdResult = Result<(), Box<dyn Error>>;

static VERBOSITY: OnceLock<Verbosity> = OnceLock::new();

/// Installs telemetry sinks from the global flags: a console sink at
/// `--log-level` (default `info`) and, when `--metrics-out PATH` is given, a
/// JSONL file sink receiving every epoch record and the final run summary.
pub fn init_observability(parsed: &Parsed) -> Result<Verbosity, Box<dyn Error>> {
    let level: Verbosity = parsed
        .get("log-level")
        .unwrap_or("info")
        .parse()
        .map_err(|e: String| -> Box<dyn Error> { e.into() })?;
    let _ = VERBOSITY.set(level);
    inbox_obs::add_sink(Arc::new(ConsoleSink::new(level)));
    if let Some(path) = parsed.get("metrics-out") {
        let sink = JsonlSink::create(std::path::Path::new(path))
            .map_err(|e| format!("cannot create --metrics-out {path}: {e}"))?;
        inbox_obs::add_sink(Arc::new(sink));
    }
    Ok(level)
}

/// The verbosity chosen at startup (`info` when running without
/// [`init_observability`], e.g. from unit tests).
fn verbosity() -> Verbosity {
    VERBOSITY.get().copied().unwrap_or(Verbosity::Info)
}

/// Whether non-error console output is allowed.
fn chatty() -> bool {
    verbosity() > Verbosity::Quiet
}

fn preset_by_name(name: &str) -> Result<SyntheticConfig, Box<dyn Error>> {
    Ok(match name {
        "tiny" => SyntheticConfig::tiny(),
        "small" => SyntheticConfig::small(),
        "lastfm" => SyntheticConfig::lastfm_like(),
        "yelp" => SyntheticConfig::yelp_like(),
        "ifashion" => SyntheticConfig::ifashion_like(),
        "amazon" => SyntheticConfig::amazon_like(),
        other => return Err(format!("unknown preset {other:?}").into()),
    })
}

/// Loads the dataset selected by `--preset` or `--data`.
pub fn load_dataset(parsed: &Parsed) -> Result<Dataset, Box<dyn Error>> {
    match (parsed.get("preset"), parsed.get("data")) {
        (Some(p), None) => {
            let seed = parsed.get_parsed("seed", 7u64)?;
            Ok(Dataset::synthetic(&preset_by_name(p)?, seed))
        }
        (None, Some(dir)) => Ok(Dataset::from_dir(dir, dir)?),
        _ => Err("exactly one of --preset or --data is required".into()),
    }
}

/// `inbox stats` — Table-1-style statistics.
pub fn stats(parsed: &Parsed) -> CmdResult {
    let ds = load_dataset(parsed)?;
    if chatty() {
        println!("dataset: {}", ds.name);
        println!("#Users        {:>10}", ds.n_users());
        println!(
            "#Interactions {:>10}",
            ds.train.n_interactions() + ds.test.n_interactions()
        );
        println!("{}", ds.kg_stats());
    }
    Ok(())
}

/// `inbox export` — write a synthetic dataset in KGIN format.
pub fn export(parsed: &Parsed) -> CmdResult {
    let preset = parsed.require("preset")?;
    let out = parsed.require("out")?;
    let seed = parsed.get_parsed("seed", 7u64)?;
    let ds = Dataset::synthetic(&preset_by_name(preset)?, seed);
    std::fs::create_dir_all(out)?;
    let dir = std::path::Path::new(out);

    let dump = |inter: &inbox_data::Interactions, path: &std::path::Path| -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        for u in 0..inter.n_users() as u32 {
            let items = inter.items_of(UserId(u));
            if items.is_empty() {
                continue;
            }
            write!(f, "{u}")?;
            for i in items {
                write!(f, " {}", i.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    };
    dump(&ds.train, &dir.join("train.txt"))?;
    dump(&ds.test, &dir.join("test.txt"))?;

    let n_items = ds.kg.n_items() as u32;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("kg_final.txt"))?);
    for t in ds.kg.iri_triples() {
        writeln!(f, "{} {} {}", t.head.0, t.relation.0, t.tail.0)?;
    }
    for t in ds.kg.trt_triples() {
        writeln!(
            f,
            "{} {} {}",
            n_items + t.head.0,
            t.relation.0,
            n_items + t.tail.0
        )?;
    }
    for t in ds.kg.irt_triples() {
        writeln!(f, "{} {} {}", t.head.0, t.relation.0, n_items + t.tail.0)?;
    }
    drop(f);
    if chatty() {
        println!(
            "exported {} ({} interactions, {} triples) to {}",
            ds.name,
            ds.train.n_interactions() + ds.test.n_interactions(),
            ds.kg_stats().n_triples(),
            out
        );
    }
    Ok(())
}

/// Builds the training configuration from flags.
pub fn config_from_flags(parsed: &Parsed) -> Result<InBoxConfig, Box<dyn Error>> {
    let dim = parsed.get_parsed("dim", 32usize)?;
    let mut cfg = InBoxConfig::for_dim(dim);
    cfg.epochs_stage1 = parsed.get_parsed("epochs1", cfg.epochs_stage1)?;
    cfg.epochs_stage2 = parsed.get_parsed("epochs2", cfg.epochs_stage2)?;
    cfg.epochs_stage3 = parsed.get_parsed("epochs3", cfg.epochs_stage3)?;
    cfg.lr = parsed.get_parsed("lr", cfg.lr)?;
    cfg.seed = parsed.get_parsed("seed", cfg.seed)?;
    cfg.gamma = parsed.get_parsed("gamma", cfg.gamma)?;
    if parsed.has("maxmin") {
        cfg.intersection = IntersectionMode::MaxMin;
    }
    if parsed.has("quick") {
        cfg.epochs_stage1 = (cfg.epochs_stage1 / 4).max(2);
        cfg.epochs_stage2 = (cfg.epochs_stage2 / 4).max(2);
        cfg.epochs_stage3 = (cfg.epochs_stage3 / 4).max(2);
    }
    Ok(cfg)
}

/// `inbox train` — train and checkpoint a model.
pub fn train(parsed: &Parsed) -> CmdResult {
    let out = parsed.require("out")?;
    let ds = load_dataset(parsed)?;
    let cfg = config_from_flags(parsed)?;
    if chatty() {
        eprintln!(
            "training on {} ({} users, {} items, {} triples) with d={} ...",
            ds.name,
            ds.n_users(),
            ds.n_items(),
            ds.kg_stats().n_triples(),
            cfg.dim
        );
    }
    let (trained, train_time) = inbox_obs::time("cli.train", || inbox_core::train(&ds, cfg));
    if chatty() {
        eprintln!(
            "trained in {:.1?} (early stop: {})",
            train_time, trained.report.early_stopped
        );
    }
    let metrics = trained.evaluate(&ds, 20);
    if chatty() {
        println!("test metrics: {metrics}");
    }
    persist::save(&trained, out)?;
    if chatty() {
        println!("model written to {out}");
    }
    // Final span/counter aggregation under the training run's id, so the
    // JSONL stream ends with a summary matching its epoch records.
    inbox_obs::emit_run_summary(trained.report.run_id);
    inbox_obs::flush_sinks();
    Ok(())
}

/// `inbox evaluate` — metrics for a checkpointed model.
pub fn evaluate(parsed: &Parsed) -> CmdResult {
    let model_path = parsed.require("model")?;
    let k = parsed.get_parsed("k", 20usize)?;
    let ds = load_dataset(parsed)?;
    let trained = persist::load(model_path)?;
    let metrics = inbox_eval::evaluate_with_threads(&trained, &ds.train, &ds.test, k, 1);
    if chatty() {
        println!(
            "recall@{k} {:.4}, ndcg@{k} {:.4} ({} users)",
            metrics.recall, metrics.ndcg, metrics.n_users_evaluated
        );
    }
    let beyond = beyond_accuracy(&trained, &ds.train, &ds.test, k);
    if chatty() {
        println!(
            "coverage {:.3}, exposure gini {:.3}, mean list length {:.1}",
            beyond.coverage, beyond.gini, beyond.mean_list_len
        );
    }
    Ok(())
}

/// `inbox recommend` — top-K for a user, optionally explained.
pub fn recommend(parsed: &Parsed) -> CmdResult {
    let model_path = parsed.require("model")?;
    let user: u32 = parsed
        .require("user")?
        .parse()
        .map_err(|e| format!("bad --user: {e}"))?;
    let k = parsed.get_parsed("k", 10usize)?;
    let ds = load_dataset(parsed)?;
    let trained = persist::load(model_path)?;
    let user = UserId(user);
    if user.index() >= ds.n_users() {
        return Err(format!(
            "user {} out of range (dataset has {})",
            user.0,
            ds.n_users()
        )
        .into());
    }
    let seen = ds.train.items_of(user);
    if chatty() {
        println!(
            "user {} has {} training interactions; top-{k}:",
            user.0,
            seen.len()
        );
    }
    let recs = trained.recommend(user, seen, k);
    if chatty() {
        for (rank, (item, score)) in recs.iter().enumerate() {
            let marker = if ds.test.contains(user, *item) {
                "  [test hit]"
            } else {
                ""
            };
            println!("{:>3}. {} score {score:.3}{marker}", rank + 1, item);
        }
    }
    if parsed.has("explain") {
        if let Some((top, _)) = recs.first() {
            if let Some(ex) = explain(&trained, &ds.kg, user, *top) {
                if chatty() {
                    println!("\nwhy {top}?\n{}", format_explanation(&ex, &ds.kg));
                }
            }
        }
    }
    let _ = trained.score_items(user); // exercise the Scorer path
    Ok(())
}

/// Builds the serving configuration from flags.
pub fn serve_config_from_flags(parsed: &Parsed) -> Result<ServeConfig, Box<dyn Error>> {
    let defaults = ServeConfig::default();
    // Candidate generation: `--index full` (default) scores every item;
    // `--index ivf` builds the IVF + box-pruning index, with `--nlist` /
    // `--nprobe` overriding the auto-derived knobs (0 = auto).
    let index = match parsed.get("index") {
        None => defaults.index,
        Some(name) => match inbox_serve::IndexMode::parse(name) {
            Some(inbox_serve::IndexMode::Ivf { .. }) => inbox_serve::IndexMode::Ivf {
                nlist: parsed.get_parsed("nlist", 0usize)?,
                nprobe: parsed.get_parsed("nprobe", 0usize)?,
            },
            Some(mode) => mode,
            None => return Err(format!("--index {name}: expected 'full' or 'ivf'").into()),
        },
    };
    // Inference quantization: `--quantize int8` scores through the
    // dequantize-free int8 kernel; `none` (default) keeps f32.
    let quantize = match parsed.get("quantize") {
        None => defaults.quantize,
        Some(name) => {
            inbox_serve::Quantization::parse(name).map_err(|e| format!("--quantize {name}: {e}"))?
        }
    };
    // Shadow-oracle auditing: `--audit-sample N` re-ranks 1-in-N answers
    // through the exact oracle in the background (0 disables), and
    // `--audit-floor F` arms the latched degradation alert on windowed
    // audit recall.
    let audit_floor = match parsed.get("audit-floor") {
        None => defaults.audit_floor,
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|e| format!("bad --audit-floor: {e}"))?,
        ),
    };
    Ok(ServeConfig {
        index,
        quantize,
        audit_sample: parsed.get_parsed("audit-sample", defaults.audit_sample)?,
        audit_queue_cap: parsed.get_parsed("audit-queue-cap", defaults.audit_queue_cap)?,
        audit_floor,
        max_batch: parsed.get_parsed("batch-max", defaults.max_batch)?,
        batch_wait: std::time::Duration::from_micros(parsed.get_parsed("batch-wait-us", 500u64)?),
        queue_cap: parsed.get_parsed("queue-cap", defaults.queue_cap)?,
        cache_cap: parsed.get_parsed("cache-cap", defaults.cache_cap)?,
        threads: parsed.get_parsed("threads", defaults.threads)?,
        slo_objective: std::time::Duration::from_millis(
            parsed.get_parsed("slo-ms", defaults.slo_objective.as_millis() as u64)?,
        ),
        trace_slow: std::time::Duration::from_millis(
            parsed.get_parsed("trace-slow-ms", defaults.trace_slow.as_millis() as u64)?,
        ),
    })
}

/// One blocking HTTP GET against the local server (smoke checks).
fn self_request(addr: std::net::SocketAddr, path: &str) -> Result<String, Box<dyn Error>> {
    use std::io::Read as _;
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: inbox\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    if !response.starts_with("HTTP/1.1 200") {
        return Err(format!("{path} answered: {}", response.lines().next().unwrap_or("")).into());
    }
    Ok(response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default())
}

/// `inbox serve` — load a checkpoint and serve recommendations over HTTP.
pub fn serve(parsed: &Parsed) -> CmdResult {
    let model_path = parsed.require("model")?;
    let addr = parsed.get("addr").unwrap_or("127.0.0.1:7878");
    let serve_cfg = serve_config_from_flags(parsed)?;
    // Trace 1-in-N requests (process-global knob; 0 disables tracing).
    inbox_obs::set_trace_sampling(parsed.get_parsed("trace-sample", 1u64)?);
    let ds = load_dataset(parsed)?;
    let trained = persist::load(model_path)?;
    if trained.boxes.len() != ds.n_users() {
        return Err(format!(
            "checkpoint was trained on {} users but the dataset has {} — \
             serve needs the same --preset/--data the model was trained on",
            trained.boxes.len(),
            ds.n_users()
        )
        .into());
    }
    let engine = Engine::from_trained(trained, ds.kg.clone(), &ds.train, &serve_cfg);
    let service = Arc::new(Service::start(engine, &serve_cfg));
    let http = HttpServer::bind(Arc::clone(&service), addr)
        .map_err(|e| format!("cannot bind --addr {addr}: {e}"))?;
    if chatty() {
        println!(
            "serving {} on http://{} (batch {} / {}us, queue {}, cache {}, threads {}, index {}, quantize {})",
            ds.name,
            http.local_addr(),
            serve_cfg.max_batch,
            serve_cfg.batch_wait.as_micros(),
            serve_cfg.queue_cap,
            serve_cfg.cache_cap,
            serve_cfg.threads,
            match service.engine().index_active() {
                Some((nlist, nprobe)) => format!("ivf(nlist={nlist},nprobe={nprobe})"),
                None => "full".to_string(),
            },
            service.engine().quantization().as_str()
        );
        println!("routes: GET /health  GET /recommend?user=U&k=K  POST /ingest?user=U&item=I  GET /stats  GET /audit  GET /metrics  GET /traces  GET /profile");
    }
    if parsed.has("smoke") {
        // Prove the wire path end to end, then exit (used by CI).
        self_request(http.local_addr(), "/health")?;
        let body = self_request(http.local_addr(), "/recommend?user=0&k=5")?;
        if chatty() {
            println!("smoke recommend: {body}");
        }
        // The live observability surface must be well-formed too: /metrics
        // parses as Prometheus text with serving samples in it, and
        // /traces has recorded at least the recommend request above.
        let metrics = self_request(http.local_addr(), "/metrics")?;
        let samples = metrics
            .lines()
            .filter_map(inbox_obs::expo::parse_line)
            .count();
        if samples == 0 {
            return Err("smoke: /metrics rendered no parseable samples".into());
        }
        let traces = self_request(http.local_addr(), "/traces")?;
        let dump: inbox_obs::TraceDump = serde_json::from_str(&traces)
            .map_err(|e| format!("smoke: /traces is not valid JSON: {e}"))?;
        if dump.recent.is_empty() {
            return Err("smoke: /traces retained no request traces".into());
        }
        let folded = self_request(http.local_addr(), "/profile")?;
        if !folded
            .lines()
            .any(|l| l.starts_with("http.request;") || l.starts_with("http.request "))
        {
            return Err("smoke: /profile has no stacks rooted at http.request".into());
        }
        // The audit surface must be well-formed JSON carrying the
        // shadow-oracle series (the recommend above was the 1st answer, so
        // the 1-in-N sampler always picked it up when auditing is on).
        let audit = self_request(http.local_addr(), "/audit")?;
        let audit: serde_json::Value = serde_json::from_str(&audit)
            .map_err(|e| format!("smoke: /audit is not valid JSON: {e}"))?;
        let sampled = audit
            .as_object()
            .and_then(|o| o.get("audit"))
            .and_then(|a| a.as_object())
            .and_then(|a| a.get("sampled"))
            .and_then(|s| s.as_f64())
            .unwrap_or(0.0);
        if serve_cfg.audit_sample > 0 && sampled == 0.0 {
            return Err("smoke: /audit recorded no sampled answers".into());
        }
        let stats = service.stats();
        if chatty() {
            println!(
                "smoke ok: {} request(s), {} rebuild(s), {} cache hit(s), {} metric sample(s), {} trace(s)",
                stats.requests,
                stats.rebuilds,
                stats.cache_hits,
                samples,
                dump.recent.len()
            );
        }
        http.shutdown();
        service.shutdown();
        inbox_obs::emit_run_summary(inbox_obs::next_run_id());
        inbox_obs::flush_sinks();
        return Ok(());
    }
    // Serve until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Pulls one named sample out of a parsed `/metrics` scrape; every label
/// in `labels` must match.
fn sample(
    samples: &[inbox_obs::expo::ParsedSample],
    metric: &str,
    labels: &[(&str, &str)],
) -> Option<f64> {
    samples
        .iter()
        .find(|(m, ls, _)| {
            m == metric
                && labels
                    .iter()
                    .all(|(k, v)| ls.iter().any(|(lk, lv)| lk == k && lv == v))
        })
        .map(|(_, _, v)| *v)
}

/// Renders one dashboard line from a raw `/metrics` scrape: last-10s QPS,
/// p99 latency, cache hit rate, queue depth, shed rate, the
/// `serve.recommend` SLO's 60s burn rate, the last-10s allocation rate,
/// the lock with the highest cumulative contention count, and the quality
/// columns — audited/sampled counts, audit queue backlog, last-minute
/// audit recall (flagged `DEGRADED` when the latch is tripped), and the
/// served-score drift PSI. Pure (testable without a server).
pub fn render_dashboard(metrics_text: &str) -> String {
    let samples: Vec<_> = metrics_text
        .lines()
        .filter_map(inbox_obs::expo::parse_line)
        .collect();
    let qps = sample(
        &samples,
        "inbox_span_window_rate",
        &[("name", "serve.request"), ("window", "10s")],
    )
    .unwrap_or(0.0);
    let p99_ms = sample(
        &samples,
        "inbox_span_window_seconds",
        &[
            ("name", "serve.request"),
            ("window", "10s"),
            ("quantile", "0.99"),
        ],
    )
    .unwrap_or(0.0)
        * 1e3;
    let requests = sample(
        &samples,
        "inbox_counter_window",
        &[("name", "serve.requests"), ("window", "10s")],
    )
    .unwrap_or(0.0);
    let hits = sample(
        &samples,
        "inbox_counter_window",
        &[("name", "serve.cache.hits"), ("window", "10s")],
    )
    .unwrap_or(0.0);
    let hit_pct = if requests > 0.0 {
        100.0 * hits / requests
    } else {
        0.0
    };
    let queue_p99 = sample(
        &samples,
        "inbox_value_window",
        &[
            ("name", "serve.queue.depth"),
            ("window", "10s"),
            ("quantile", "0.99"),
        ],
    )
    .unwrap_or(0.0);
    let shed_rate = sample(
        &samples,
        "inbox_counter_window",
        &[("name", "serve.shed"), ("window", "10s")],
    )
    .unwrap_or(0.0)
        / 10.0;
    let burn = sample(
        &samples,
        "inbox_slo_burn_rate",
        &[("name", "serve.recommend"), ("window", "60s")],
    )
    .unwrap_or(0.0);
    let alloc_rate =
        sample(&samples, "inbox_alloc_window", &[("window", "10s")]).unwrap_or(0.0) / 10.0;
    let hot_lock = samples
        .iter()
        .filter_map(|(m, ls, v)| {
            if m != "inbox_counter_total" {
                return None;
            }
            let name = ls
                .iter()
                .find(|(k, _)| k == "name")
                .map(|(_, v)| v.as_str())?;
            let lock = name.strip_prefix("lock.")?.strip_suffix(".contended")?;
            Some((lock.to_string(), *v))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1));
    let hot_lock = match hot_lock {
        Some((name, n)) if n > 0.0 => format!("{name}({n:.0})"),
        _ => "-".to_string(),
    };
    let audit_sampled = sample(&samples, "inbox_audit_sampled_total", &[]).unwrap_or(0.0);
    let audit_audited = sample(&samples, "inbox_audit_audited_total", &[]).unwrap_or(0.0);
    let audit_recall = sample(&samples, "inbox_audit_recall", &[("window", "60s")]).unwrap_or(1.0);
    let audit_degraded = sample(&samples, "inbox_audit_degraded", &[]).unwrap_or(0.0);
    let audit_backlog = sample(
        &samples,
        "inbox_value_window",
        &[
            ("name", "audit.queue.depth"),
            ("window", "10s"),
            ("quantile", "0.99"),
        ],
    )
    .unwrap_or(0.0);
    let audit_state = if audit_degraded > 0.0 {
        " DEGRADED"
    } else {
        ""
    };
    let psi = sample(&samples, "inbox_audit_drift", &[("stat", "psi.score")]).unwrap_or(0.0);
    format!(
        "qps {qps:8.1} | p99 {p99_ms:8.2} ms | cache hit {hit_pct:5.1}% | queue p99 {queue_p99:5.0} | shed/s {shed_rate:6.2} | burn60 {burn:5.2} | alloc/s {alloc_rate:8.1} | hot lock {hot_lock} | audit {audit_audited:.0}/{audit_sampled:.0} bl {audit_backlog:3.0} rec60 {audit_recall:4.2}{audit_state} | psi {psi:6.3}"
    )
}

/// `inbox obs` — poll a running server's `/metrics` and render a terminal
/// dashboard, one line per scrape.
pub fn obs(parsed: &Parsed) -> CmdResult {
    use std::net::ToSocketAddrs as _;
    let addr = parsed.get("addr").unwrap_or("127.0.0.1:7878");
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad --addr {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("--addr {addr} resolved to nothing"))?;
    let interval = std::time::Duration::from_millis(parsed.get_parsed("interval-ms", 1000u64)?);
    let iters = parsed.get_parsed("iters", 0u64)?; // 0 = run until killed
    let mut done = 0u64;
    loop {
        let metrics = self_request(sock, "/metrics")
            .map_err(|e| format!("scraping http://{addr}/metrics: {e}"))?;
        println!("{}", render_dashboard(&metrics));
        done += 1;
        if iters != 0 && done >= iters {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// `inbox profile` — fetch a running server's folded-stack profile
/// (`GET /profile`) and print it to stdout, or write it to `--out FILE`.
/// The output is one `root;child;grandchild self_ns` line per frame —
/// exactly what `flamegraph.pl` consumes:
///
/// ```text
/// inbox profile --addr 127.0.0.1:7878 > serve.folded
/// flamegraph.pl --countname ns serve.folded > serve.svg
/// ```
pub fn profile(parsed: &Parsed) -> CmdResult {
    use std::net::ToSocketAddrs as _;
    let addr = parsed.get("addr").unwrap_or("127.0.0.1:7878");
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad --addr {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("--addr {addr} resolved to nothing"))?;
    let folded = self_request(sock, "/profile")
        .map_err(|e| format!("fetching http://{addr}/profile: {e}"))?;
    if folded.trim().is_empty() {
        return Err(
            "server returned an empty profile — no requests traced yet (check --trace-sample)"
                .into(),
        );
    }
    match parsed.get("out") {
        Some(out) => {
            std::fs::write(out, &folded).map_err(|e| format!("writing {out}: {e}"))?;
            if chatty() {
                eprintln!("{} stack frame(s) written to {out}", folded.lines().count());
            }
        }
        None => print!("{folded}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(tokens: &[&str]) -> Parsed {
        let v: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        Parsed::parse(&v).unwrap()
    }

    #[test]
    fn preset_lookup() {
        assert!(preset_by_name("tiny").is_ok());
        assert!(preset_by_name("lastfm").is_ok());
        assert!(preset_by_name("nope").is_err());
    }

    #[test]
    fn dataset_requires_exactly_one_source() {
        let p = parsed(&["stats"]);
        assert!(load_dataset(&p).is_err());
        let p = parsed(&["stats", "--preset", "tiny", "--data", "/tmp"]);
        assert!(load_dataset(&p).is_err());
        let p = parsed(&["stats", "--preset", "tiny"]);
        assert!(load_dataset(&p).is_ok());
    }

    #[test]
    fn config_flags_respected() {
        let p = parsed(&[
            "train",
            "--dim",
            "16",
            "--lr",
            "0.01",
            "--epochs1",
            "5",
            "--maxmin",
            "--quick",
        ]);
        let cfg = config_from_flags(&p).unwrap();
        assert_eq!(cfg.dim, 16);
        assert_eq!(cfg.lr, 0.01);
        assert_eq!(cfg.intersection, IntersectionMode::MaxMin);
        // --quick divides epochs (after explicit --epochs1 5 -> 5/4 max 2).
        assert_eq!(cfg.epochs_stage1, 2);
        // gamma auto-scaled for dim 16 unless overridden.
        assert_eq!(cfg.gamma, InBoxConfig::auto_gamma(16));
    }

    #[test]
    fn full_cli_train_evaluate_recommend_cycle() {
        let dir = std::env::temp_dir().join(format!("inbox-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("model.json");
        let model_str = model.to_str().unwrap();

        // export
        let data_dir = dir.join("data");
        let p = parsed(&[
            "export",
            "--preset",
            "tiny",
            "--out",
            data_dir.to_str().unwrap(),
        ]);
        export(&p).unwrap();
        assert!(data_dir.join("kg_final.txt").exists());

        // stats from the exported dir
        let p = parsed(&["stats", "--data", data_dir.to_str().unwrap()]);
        stats(&p).unwrap();

        // train on the exported data (quick)
        let p = parsed(&[
            "train",
            "--data",
            data_dir.to_str().unwrap(),
            "--out",
            model_str,
            "--dim",
            "8",
            "--quick",
        ]);
        train(&p).unwrap();
        assert!(model.exists());

        // evaluate
        let p = parsed(&[
            "evaluate",
            "--model",
            model_str,
            "--data",
            data_dir.to_str().unwrap(),
        ]);
        evaluate(&p).unwrap();

        // recommend with explanation
        let p = parsed(&[
            "recommend",
            "--model",
            model_str,
            "--data",
            data_dir.to_str().unwrap(),
            "--user",
            "0",
            "--k",
            "5",
            "--explain",
        ]);
        recommend(&p).unwrap();

        // out-of-range user rejected
        let p = parsed(&[
            "recommend",
            "--model",
            model_str,
            "--data",
            data_dir.to_str().unwrap(),
            "--user",
            "99999",
        ]);
        assert!(recommend(&p).is_err());

        // serve --smoke: checkpoint up, HTTP round-trips, clean exit.
        let p = parsed(&[
            "serve",
            "--model",
            model_str,
            "--data",
            data_dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--index",
            "ivf",
            "--smoke",
        ]);
        serve(&p).unwrap();

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_config_flags_respected() {
        let p = parsed(&[
            "serve",
            "--batch-max",
            "8",
            "--batch-wait-us",
            "250",
            "--queue-cap",
            "64",
            "--cache-cap",
            "1000",
            "--threads",
            "2",
            "--slo-ms",
            "20",
            "--trace-slow-ms",
            "100",
            "--index",
            "ivf",
            "--nlist",
            "64",
            "--nprobe",
            "8",
            "--audit-sample",
            "16",
            "--audit-queue-cap",
            "32",
            "--audit-floor",
            "0.97",
        ]);
        let cfg = serve_config_from_flags(&p).unwrap();
        assert_eq!(cfg.max_batch, 8);
        assert_eq!(cfg.batch_wait, std::time::Duration::from_micros(250));
        assert_eq!(cfg.queue_cap, 64);
        assert_eq!(cfg.cache_cap, 1000);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.slo_objective, std::time::Duration::from_millis(20));
        assert_eq!(cfg.trace_slow, std::time::Duration::from_millis(100));
        assert_eq!(
            cfg.index,
            inbox_serve::IndexMode::Ivf {
                nlist: 64,
                nprobe: 8
            }
        );
        assert_eq!(cfg.audit_sample, 16);
        assert_eq!(cfg.audit_queue_cap, 32);
        assert_eq!(cfg.audit_floor, Some(0.97));
        // Defaults hold when flags are absent.
        let d = serve_config_from_flags(&parsed(&["serve"])).unwrap();
        assert_eq!(d.max_batch, inbox_serve::ServeConfig::default().max_batch);
        assert_eq!(
            d.slo_objective,
            inbox_serve::ServeConfig::default().slo_objective
        );
        assert_eq!(d.index, inbox_serve::IndexMode::FullSort);
        assert_eq!(d.audit_sample, 32, "auditing defaults on at 1-in-32");
        assert_eq!(d.audit_floor, None, "alerting defaults off");
        assert!(serve_config_from_flags(&parsed(&["serve", "--audit-floor", "high"])).is_err());
        // Bare `--index ivf` leaves both knobs on auto; junk is rejected.
        let auto = serve_config_from_flags(&parsed(&["serve", "--index", "ivf"])).unwrap();
        assert_eq!(
            auto.index,
            inbox_serve::IndexMode::Ivf {
                nlist: 0,
                nprobe: 0
            }
        );
        assert!(serve_config_from_flags(&parsed(&["serve", "--index", "rtree"])).is_err());
    }

    #[test]
    fn dashboard_renders_from_metrics_text() {
        let text = "\
# TYPE inbox_span_window_rate gauge
inbox_span_window_rate{name=\"serve.request\",window=\"10s\"} 123.5
inbox_span_window_seconds{name=\"serve.request\",window=\"10s\",quantile=\"0.99\"} 0.004
inbox_counter_window{name=\"serve.requests\",window=\"10s\"} 200
inbox_counter_window{name=\"serve.cache.hits\",window=\"10s\"} 150
inbox_counter_window{name=\"serve.shed\",window=\"10s\"} 20
inbox_value_window{name=\"serve.queue.depth\",window=\"10s\",quantile=\"0.99\"} 7
inbox_slo_burn_rate{name=\"serve.recommend\",window=\"60s\"} 1.25
inbox_alloc_window{window=\"10s\"} 420
inbox_counter_total{name=\"lock.engine.cache.contended\"} 3
inbox_counter_total{name=\"lock.batcher.queue.contended\"} 17
inbox_audit_sampled_total 9
inbox_audit_audited_total 8
inbox_audit_recall{window=\"60s\"} 0.95
inbox_audit_degraded 1
inbox_value_window{name=\"audit.queue.depth\",window=\"10s\",quantile=\"0.99\"} 2
inbox_audit_drift{stat=\"psi.score\"} 0.042
";
        let line = render_dashboard(text);
        assert!(line.contains("qps    123.5"), "{line}");
        assert!(line.contains("p99     4.00 ms"), "{line}");
        assert!(line.contains("cache hit  75.0%"), "{line}");
        assert!(line.contains("shed/s   2.00"), "{line}");
        assert!(line.contains("burn60  1.25"), "{line}");
        assert!(line.contains("alloc/s     42.0"), "{line}");
        assert!(line.contains("hot lock batcher.queue(17)"), "{line}");
        assert!(line.contains("audit 8/9"), "{line}");
        assert!(line.contains("bl   2"), "{line}");
        assert!(line.contains("rec60 0.95 DEGRADED"), "{line}");
        assert!(line.contains("psi  0.042"), "{line}");
    }

    #[test]
    fn dashboard_tolerates_empty_scrape() {
        let line = render_dashboard("# nothing here\n");
        assert!(line.contains("qps"), "{line}");
        assert!(line.contains("0.0"), "{line}");
        assert!(line.contains("hot lock -"), "{line}");
        // No audit traffic reads healthy, not alarming.
        assert!(line.contains("rec60 1.00"), "{line}");
        assert!(!line.contains("DEGRADED"), "{line}");
    }

    #[test]
    fn profile_fetches_folded_stacks_from_live_server() {
        let ds = inbox_data::Dataset::synthetic(&SyntheticConfig::tiny(), 5);
        let trained = inbox_core::train(&ds, InBoxConfig::tiny_test());
        let serve_cfg = inbox_serve::ServeConfig::default();
        let engine =
            inbox_serve::Engine::from_trained(trained, ds.kg.clone(), &ds.train, &serve_cfg);
        let service = Arc::new(inbox_serve::Service::start(engine, &serve_cfg));
        let http = inbox_serve::HttpServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
        self_request(http.local_addr(), "/recommend?user=0&k=3").unwrap();

        let out = std::env::temp_dir().join(format!("inbox-profile-{}.folded", std::process::id()));
        let addr = http.local_addr().to_string();
        let p = parsed(&["profile", "--addr", &addr, "--out", out.to_str().unwrap()]);
        profile(&p).unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(
            text.lines()
                .any(|l| l.starts_with("http.request;") || l.starts_with("http.request ")),
            "profile output must contain stacks rooted at http.request:\n{text}"
        );
        for line in text.lines() {
            let (_, value) = line.rsplit_once(' ').expect("folded line has a value");
            value.parse::<u64>().expect("self-time is integral ns");
        }
        std::fs::remove_file(&out).unwrap();
        http.shutdown();
        service.shutdown();
    }
}
