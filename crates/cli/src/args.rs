//! Minimal dependency-free flag parsing for the `inbox` CLI.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The subcommand (first non-flag argument).
    pub command: String,
    flags: HashMap<String, String>,
    /// Flags given without a value (`--verbose`).
    switches: Vec<String>,
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A flag appeared twice.
    Duplicate(String),
    /// A required flag is missing.
    MissingFlag(&'static str),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Problem description.
        message: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::Duplicate(k) => write!(f, "flag --{k} given twice"),
            ArgError::MissingFlag(k) => write!(f, "required flag --{k} missing"),
            ArgError::BadValue { flag, message } => write!(f, "bad value for --{flag}: {message}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Parsed {
    /// Parses `args` (without the program name).
    pub fn parse(args: &[String]) -> Result<Self, ArgError> {
        let mut it = args.iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?.clone();
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                // A value is the next token unless it is itself a flag.
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().unwrap().clone();
                        if flags.insert(key.to_string(), v).is_some() {
                            return Err(ArgError::Duplicate(key.to_string()));
                        }
                    }
                    _ => switches.push(key.to_string()),
                }
            }
        }
        Ok(Self {
            command,
            flags,
            switches,
        })
    }

    /// A string flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, key: &'static str) -> Result<&str, ArgError> {
        self.get(key).ok_or(ArgError::MissingFlag(key))
    }

    /// A typed flag with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e: T::Err| ArgError::BadValue {
                flag: key.to_string(),
                message: e.to_string(),
            }),
        }
    }

    /// True when a bare `--switch` was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Parsed, ArgError> {
        let v: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        Parsed::parse(&v)
    }

    #[test]
    fn parses_command_flags_switches() {
        let p = parse(&["train", "--dim", "32", "--quick", "--seed", "7"]).unwrap();
        assert_eq!(p.command, "train");
        assert_eq!(p.get("dim"), Some("32"));
        assert_eq!(p.get_parsed("dim", 0usize).unwrap(), 32);
        assert_eq!(p.get_parsed("seed", 0u64).unwrap(), 7);
        assert!(p.has("quick"));
        assert!(!p.has("verbose"));
        assert_eq!(p.get_parsed("missing", 5usize).unwrap(), 5);
    }

    #[test]
    fn missing_command_and_flags() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::MissingCommand);
        let p = parse(&["train"]).unwrap();
        assert_eq!(p.require("out").unwrap_err(), ArgError::MissingFlag("out"));
    }

    #[test]
    fn duplicate_flag_rejected() {
        let err = parse(&["x", "--a", "1", "--a", "2"]).unwrap_err();
        assert_eq!(err, ArgError::Duplicate("a".into()));
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn bad_value_reported() {
        let p = parse(&["x", "--dim", "abc"]).unwrap();
        let err = p.get_parsed("dim", 0usize).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
    }
}
