//! Cross-crate integration tests: the full pipeline from dataset generation
//! through three-stage training to ranked evaluation, plus model-vs-baseline
//! ordering and the KGIN-format loader round trip.

use inbox_repro::baselines::{BaselineKind, MfBpr, MfConfig, Popularity};
use inbox_repro::core::interpret::explain;
use inbox_repro::core::{train, Ablation, InBoxConfig};
use inbox_repro::data::{loader, Dataset, SyntheticConfig};
use inbox_repro::eval::evaluate_with_threads;
use inbox_repro::kg::{KgStats, UserId};

fn small_dataset(seed: u64) -> Dataset {
    Dataset::synthetic(&SyntheticConfig::small(), seed)
}

#[test]
fn inbox_beats_popularity_and_mf_on_concept_driven_data() {
    let ds = small_dataset(17);
    let cfg = InBoxConfig {
        epochs_stage1: 20,
        epochs_stage2: 12,
        epochs_stage3: 15,
        n_negatives: 16,
        max_history: 24,
        lr: 1.5e-2,
        ..InBoxConfig::for_dim(16)
    };
    let trained = train(&ds, cfg);
    let inbox = trained.evaluate(&ds, 20);

    let pop = Popularity::fit(&ds.train);
    let pop_m = evaluate_with_threads(&pop, &ds.train, &ds.test, 20, 1);

    let mf = MfBpr::fit(
        &ds.train,
        &MfConfig {
            dim: 16,
            epochs: 30,
            ..Default::default()
        },
    );
    let mf_m = evaluate_with_threads(&mf, &ds.train, &ds.test, 20, 1);

    assert!(
        inbox.recall > pop_m.recall,
        "InBox {:.4} must beat Popularity {:.4}",
        inbox.recall,
        pop_m.recall
    );
    assert!(
        inbox.recall > mf_m.recall,
        "InBox {:.4} must beat MF {:.4}",
        inbox.recall,
        mf_m.recall
    );
}

#[test]
fn removing_both_kg_stages_collapses_performance() {
    // The paper's strongest ablation signal (Table 3): w/o B&I collapses.
    let ds = small_dataset(18);
    let mk = |ablation: Ablation| {
        let cfg = ablation.configure(InBoxConfig {
            epochs_stage1: 15,
            epochs_stage2: 10,
            epochs_stage3: 12,
            n_negatives: 16,
            max_history: 24,
            lr: 1.5e-2,
            ..InBoxConfig::for_dim(16)
        });
        train(&ds, cfg).evaluate(&ds, 20).recall
    };
    let base = mk(Ablation::Base);
    let without_bi = mk(Ablation::WithoutBAndI);
    assert!(
        base > without_bi * 1.5,
        "base {base:.4} should far exceed w/o B&I {without_bi:.4}"
    );
}

#[test]
fn every_table2_model_produces_valid_rankings() {
    let ds = Dataset::synthetic(&SyntheticConfig::tiny(), 19);
    for kind in BaselineKind::table2_rows() {
        let model = kind.fit(&ds, 8, 3, 5);
        let scores = model.score_items(UserId(0));
        assert_eq!(scores.len(), ds.n_items(), "{}", kind.label());
        assert!(scores.iter().all(|s| s.is_finite()), "{}", kind.label());
    }
}

#[test]
fn explanations_agree_with_ranking_scores() {
    let ds = Dataset::synthetic(&SyntheticConfig::tiny(), 20);
    let trained = train(&ds, InBoxConfig::tiny_test());
    for u in 0..5u32 {
        let user = UserId(u);
        let seen = ds.train.items_of(user);
        if seen.is_empty() {
            continue;
        }
        for (item, score) in trained.recommend(user, seen, 3) {
            let ex = explain(&trained, &ds.kg, user, item).unwrap();
            assert!(
                (ex.score - score).abs() < 1e-4,
                "explanation score must match ranking score"
            );
        }
    }
}

#[test]
fn kgin_format_roundtrip_through_filesystem() {
    // Export a synthetic dataset in the KGIN plain-text format, reload it,
    // and check the statistics survive.
    let ds = Dataset::synthetic(&SyntheticConfig::tiny(), 21);
    let dir = std::env::temp_dir().join(format!("inbox-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let dump = |inter: &inbox_repro::data::Interactions| -> String {
        let mut out = String::new();
        for u in 0..inter.n_users() as u32 {
            let items = inter.items_of(UserId(u));
            if items.is_empty() {
                continue;
            }
            out.push_str(&u.to_string());
            for i in items {
                out.push(' ');
                out.push_str(&i.0.to_string());
            }
            out.push('\n');
        }
        out
    };
    std::fs::write(dir.join("train.txt"), dump(&ds.train)).unwrap();
    std::fs::write(dir.join("test.txt"), dump(&ds.test)).unwrap();

    let n_items = ds.kg.n_items() as u32;
    let mut kg_txt = String::new();
    for t in ds.kg.iri_triples() {
        kg_txt.push_str(&format!("{} {} {}\n", t.head.0, t.relation.0, t.tail.0));
    }
    for t in ds.kg.trt_triples() {
        kg_txt.push_str(&format!(
            "{} {} {}\n",
            n_items + t.head.0,
            t.relation.0,
            n_items + t.tail.0
        ));
    }
    for t in ds.kg.irt_triples() {
        kg_txt.push_str(&format!(
            "{} {} {}\n",
            t.head.0,
            t.relation.0,
            n_items + t.tail.0
        ));
    }
    std::fs::write(dir.join("kg_final.txt"), kg_txt).unwrap();

    let (train2, test2, kg2) = loader::load_dir(&dir).unwrap();
    assert_eq!(train2.n_interactions(), ds.train.n_interactions());
    assert_eq!(test2.n_interactions(), ds.test.n_interactions());
    let s1 = KgStats::of(&ds.kg);
    let s2 = KgStats::of(&kg2);
    assert_eq!(s1.n_iri, s2.n_iri);
    assert_eq!(s1.n_trt, s2.n_trt);
    assert_eq!(s1.n_irt, s2.n_irt);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn training_is_reproducible_end_to_end() {
    let ds = Dataset::synthetic(&SyntheticConfig::tiny(), 22);
    let a = train(&ds, InBoxConfig::tiny_test());
    let b = train(&ds, InBoxConfig::tiny_test());
    let user = UserId(1);
    let seen = ds.train.items_of(user);
    assert_eq!(a.recommend(user, seen, 10), b.recommend(user, seen, 10));
    assert_eq!(a.report.stage3_losses, b.report.stage3_losses);
}
