//! Integration tests for the online-serving path: refreshing a single
//! user's interest box after new interactions, without retraining.

use inbox_repro::core::{train, InBoxConfig};
use inbox_repro::data::{Dataset, Interactions, SyntheticConfig};
use inbox_repro::kg::{ItemId, UserId};

#[test]
fn refreshing_with_same_history_is_a_noop() {
    let ds = Dataset::synthetic(&SyntheticConfig::tiny(), 61);
    let mut trained = train(&ds, InBoxConfig::tiny_test());
    let user = (0..ds.n_users() as u32)
        .map(UserId)
        .find(|u| !ds.train.items_of(*u).is_empty())
        .unwrap();
    let before = trained.interest_box_of(user).unwrap().clone();
    assert!(trained.refresh_user_box(&ds.kg, &ds.train, user));
    assert_eq!(trained.interest_box_of(user).unwrap(), &before);
}

#[test]
fn new_interactions_move_the_box_and_the_ranking() {
    let ds = Dataset::synthetic(&SyntheticConfig::tiny(), 62);
    let mut trained = train(&ds, InBoxConfig::tiny_test());
    let user = (0..ds.n_users() as u32)
        .map(UserId)
        .find(|u| ds.train.items_of(*u).len() >= 3)
        .unwrap();
    let before = trained.interest_box_of(user).unwrap().clone();

    // Extend the user's history with several items they never touched.
    let mut pairs: Vec<(UserId, ItemId)> = ds.train.pairs().collect();
    let mut added = 0;
    for i in 0..ds.n_items() as u32 {
        if !ds.train.contains(user, ItemId(i)) && !ds.test.contains(user, ItemId(i)) {
            pairs.push((user, ItemId(i)));
            added += 1;
            if added == 5 {
                break;
            }
        }
    }
    let updated = Interactions::from_pairs(ds.n_users(), ds.n_items(), pairs).unwrap();

    assert!(trained.refresh_user_box(&ds.kg, &updated, user));
    let after = trained.interest_box_of(user).unwrap();
    assert_ne!(after, &before, "added interactions must reshape the box");
    // Other users' boxes are untouched.
    for u in 0..ds.n_users() as u32 {
        let other = UserId(u);
        if other == user || ds.train.items_of(other).is_empty() {
            continue;
        }
        assert!(trained.interest_box_of(other).is_some());
    }
}

#[test]
fn cold_user_gains_a_box_after_first_interaction() {
    let ds = Dataset::synthetic(&SyntheticConfig::tiny(), 63);
    let mut trained = train(&ds, InBoxConfig::tiny_test());
    // Manufacture a user with empty history by clearing one user's items.
    let user = UserId(0);
    let without: Vec<(UserId, ItemId)> = ds.train.pairs().filter(|&(u, _)| u != user).collect();
    let empty_hist = Interactions::from_pairs(ds.n_users(), ds.n_items(), without).unwrap();
    assert!(!trained.refresh_user_box(&ds.kg, &empty_hist, user));
    assert!(trained.interest_box_of(user).is_none());

    // First interaction arrives: the box comes back.
    let mut pairs: Vec<(UserId, ItemId)> = empty_hist.pairs().collect();
    pairs.push((user, ItemId(3)));
    let one = Interactions::from_pairs(ds.n_users(), ds.n_items(), pairs).unwrap();
    assert!(trained.refresh_user_box(&ds.kg, &one, user));
    assert!(trained.interest_box_of(user).is_some());
}
