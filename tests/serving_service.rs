//! End-to-end test of the serving subsystem through the facade crate:
//! train a tiny model, stand up the concurrent service, and check that
//! what it serves — in-process and over HTTP — is exactly what the trained
//! model would recommend offline.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use inbox_repro::core::{train, InBoxConfig};
use inbox_repro::data::{Dataset, SyntheticConfig};
use inbox_repro::kg::UserId;
use inbox_repro::serve::{Engine, HttpServer, ServeConfig, Service};

#[test]
fn trained_model_serves_its_offline_rankings() {
    let ds = Dataset::synthetic(&SyntheticConfig::tiny(), 71);
    let trained = train(&ds, InBoxConfig::tiny_test());

    // Offline reference rankings from the trained model itself.
    let k = 5;
    let offline: Vec<_> = (0..ds.n_users() as u32)
        .map(|u| {
            let user = UserId(u);
            trained.recommend(user, ds.train.items_of(user), k)
        })
        .collect();

    // The engine rebuilds user boxes lazily from the same histories with
    // the same frozen parameters: rankings must match bit for bit.
    let serve_cfg = ServeConfig::default();
    let engine = Engine::from_trained(trained, ds.kg.clone(), &ds.train, &serve_cfg);
    let service = Arc::new(Service::start(engine, &serve_cfg));
    for u in 0..ds.n_users() as u32 {
        let user = UserId(u);
        if ds.train.items_of(user).is_empty() {
            // Cold users degrade to popularity instead of erroring — the
            // offline path has no box for them either.
            assert!(service.recommend(user, k).unwrap().fallback, "user {u}");
            continue;
        }
        let served = service.recommend(user, k).unwrap();
        assert!(!served.fallback, "user {u}");
        assert_eq!(served.items, offline[user.index()], "user {u}");
    }

    // Same answers over the wire.
    let http = HttpServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let user = (0..ds.n_users() as u32)
        .map(UserId)
        .find(|&u| !ds.train.items_of(u).is_empty())
        .unwrap();
    let mut stream = TcpStream::connect(http.local_addr()).unwrap();
    stream
        .write_all(
            format!(
                "GET /recommend?user={}&k={k} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                user.0
            )
            .as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    for &(item, _) in &offline[user.index()] {
        assert!(
            response.contains(&format!("\"item\":{}", item.0)),
            "{response}"
        );
    }
    http.shutdown();
    service.shutdown();
}
