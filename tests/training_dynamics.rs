//! Integration tests for training *dynamics*: that each stage actually
//! achieves its geometric objective from the paper, not merely that losses
//! go down.

use inbox_repro::core::geometry;
use inbox_repro::core::{train, Ablation, InBoxConfig, IntersectionMode};
use inbox_repro::data::{Dataset, SyntheticConfig};
use inbox_repro::kg::UserId;

fn trained_small(seed: u64, cfg: InBoxConfig) -> (Dataset, inbox_repro::core::TrainedInBox) {
    let ds = Dataset::synthetic(&SyntheticConfig::small(), seed);
    let trained = train(&ds, cfg);
    (ds, trained)
}

fn std_cfg() -> InBoxConfig {
    InBoxConfig {
        epochs_stage1: 20,
        epochs_stage2: 12,
        epochs_stage3: 12,
        n_negatives: 16,
        max_history: 24,
        lr: 1.5e-2,
        ..InBoxConfig::for_dim(16)
    }
}

/// Section 3.2's goal: after training, item points should sit *much* closer
/// to their own concept boxes than to random concept boxes.
#[test]
fn stage1_places_items_near_their_concept_boxes() {
    let (ds, trained) = trained_small(31, std_cfg());
    let mut own = 0.0f64;
    let mut other = 0.0f64;
    let mut n = 0usize;
    let concepts: Vec<_> = ds.kg.concepts().map(|(c, _)| *c).collect();
    for (idx, t) in ds.kg.irt_triples().iter().enumerate().take(400) {
        let p = trained.model.item_point_f32(t.head);
        let own_box = trained.model.concept_box_f32(t.concept());
        own += geometry::d_out(p, &own_box) as f64;
        // A pseudo-random other concept.
        let alt = concepts[(idx * 31 + 7) % concepts.len()];
        if alt != t.concept() {
            let alt_box = trained.model.concept_box_f32(alt);
            other += geometry::d_out(p, &alt_box) as f64;
            n += 1;
        }
    }
    let own_mean = own / n as f64;
    let other_mean = other / n as f64;
    assert!(
        own_mean * 1.5 < other_mean,
        "items should stick out far less from their own boxes: own {own_mean:.3} vs other {other_mean:.3}"
    );
}

/// Figure 5's claim as a statistic: items sharing a concept end up closer
/// in embedding space than random item pairs.
#[test]
fn concept_members_cluster_in_embedding_space() {
    let (ds, trained) = trained_small(32, std_cfg());
    let mut same = 0.0f64;
    let mut same_n = 0usize;
    for (_, members) in ds.kg.concepts() {
        if members.len() < 3 {
            continue;
        }
        for i in 0..members.len().min(4) {
            for j in (i + 1)..members.len().min(4) {
                same += geometry::d_pp(
                    trained.model.item_point_f32(members[i]),
                    trained.model.item_point_f32(members[j]),
                ) as f64;
                same_n += 1;
            }
        }
    }
    let mut random = 0.0f64;
    let mut random_n = 0usize;
    for i in (0..ds.n_items()).step_by(5) {
        for j in (1..ds.n_items()).step_by(7) {
            if i == j {
                continue;
            }
            random += geometry::d_pp(
                trained
                    .model
                    .item_point_f32(inbox_repro::kg::ItemId(i as u32)),
                trained
                    .model
                    .item_point_f32(inbox_repro::kg::ItemId(j as u32)),
            ) as f64;
            random_n += 1;
        }
    }
    let same_mean = same / same_n as f64;
    let random_mean = random / random_n as f64;
    assert!(
        same_mean < random_mean,
        "same-concept distance {same_mean:.3} must undercut random {random_mean:.3}"
    );
}

/// The interest box must rank a user's held-out items above the median
/// random item for most users.
#[test]
fn interest_boxes_prefer_held_out_items() {
    let (ds, trained) = trained_small(33, std_cfg());
    let mut better = 0usize;
    let mut total = 0usize;
    let alpha = trained.config.inside_weight;
    for u in 0..ds.n_users() as u32 {
        let user = UserId(u);
        let test_items = ds.test.items_of(user);
        if test_items.is_empty() {
            continue;
        }
        let b = match trained.interest_box_of(user) {
            Some(b) => b,
            None => continue,
        };
        let test_d: f64 = test_items
            .iter()
            .map(|&i| geometry::d_pb_weighted(trained.model.item_point_f32(i), b, alpha) as f64)
            .sum::<f64>()
            / test_items.len() as f64;
        let mut all: Vec<f64> = (0..ds.n_items() as u32)
            .filter(|&i| !ds.train.contains(user, inbox_repro::kg::ItemId(i)))
            .map(|i| {
                geometry::d_pb_weighted(
                    trained.model.item_point_f32(inbox_repro::kg::ItemId(i)),
                    b,
                    alpha,
                ) as f64
            })
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = all[all.len() / 2];
        if test_d < median {
            better += 1;
        }
        total += 1;
    }
    assert!(
        better * 10 > total * 7,
        "only {better}/{total} users rank held-out items above the median"
    );
}

/// Max-Min intersection must remain a *working* model, merely slightly
/// weaker or comparable (the paper's `M-M I` row) — far above the collapsed
/// `w/o B&I` row.
#[test]
fn maxmin_far_exceeds_collapse() {
    let ds = Dataset::synthetic(&SyntheticConfig::small(), 34);
    let mm = train(
        &ds,
        InBoxConfig {
            intersection: IntersectionMode::MaxMin,
            ..std_cfg()
        },
    )
    .evaluate(&ds, 20);
    let collapsed = train(&ds, Ablation::WithoutBAndI.configure(std_cfg())).evaluate(&ds, 20);
    assert!(
        mm.recall > collapsed.recall * 1.5,
        "M-M I {:.4} should far exceed w/o B&I {:.4}",
        mm.recall,
        collapsed.recall
    );
}

/// Early stopping: with a generous epoch budget the trainer must terminate
/// before exhausting it once recall plateaus, and report it.
#[test]
fn early_stopping_fires_on_plateau() {
    let ds = Dataset::synthetic(&SyntheticConfig::tiny(), 35);
    let cfg = InBoxConfig {
        epochs_stage3: 100,
        patience: 2,
        ..InBoxConfig::tiny_test()
    };
    let trained = train(&ds, cfg);
    assert!(
        trained.report.early_stopped,
        "100 epochs on tiny data must plateau"
    );
    assert!(trained.report.stage3_recalls.len() < 100);
}
