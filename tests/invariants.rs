//! Property-based invariants spanning the geometry, evaluation, and model
//! crates, checked with proptest.

use inbox_repro::core::geometry::{self, BoxEmb};
use inbox_repro::core::model::{InBoxModel, TapeBox, UniverseSizes};
use inbox_repro::core::InBoxConfig;
use inbox_repro::eval::{top_k_masked, user_metrics};
use inbox_repro::kg::{Concept, ItemId, RelationId, TagId};
use proptest::prelude::*;

const DIM: usize = 6;

fn vec_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-5.0f32..5.0, DIM)
}

fn box_strategy() -> impl Strategy<Value = BoxEmb> {
    (vec_strategy(), vec_strategy()).prop_map(|(cen, off)| BoxEmb::new(cen, off))
}

proptest! {
    /// `D_out` is zero exactly when the point lies inside the box.
    #[test]
    fn d_out_zero_iff_contained(point in vec_strategy(), b in box_strategy()) {
        let outside = geometry::d_out(&point, &b);
        prop_assert_eq!(outside == 0.0, b.contains(&point));
        prop_assert!(outside >= 0.0);
    }

    /// `D_in` is bounded by the box half-widths and is exactly the
    /// center distance for interior points.
    #[test]
    fn d_in_bounds(point in vec_strategy(), b in box_strategy()) {
        let inside = geometry::d_in(&point, &b);
        prop_assert!(inside >= 0.0);
        prop_assert!(inside <= b.l1_size() + 1e-4);
        if b.contains(&point) {
            prop_assert!((inside - geometry::d_pp(&point, &b.cen)).abs() < 1e-4);
        }
    }

    /// The weighted distance interpolates: alpha=0 gives D_out,
    /// alpha=1 gives D_PB, monotone in alpha.
    #[test]
    fn weighted_distance_interpolates(point in vec_strategy(), b in box_strategy()) {
        let d0 = geometry::d_pb_weighted(&point, &b, 0.0);
        let dh = geometry::d_pb_weighted(&point, &b, 0.5);
        let d1 = geometry::d_pb_weighted(&point, &b, 1.0);
        prop_assert!((d0 - geometry::d_out(&point, &b)).abs() < 1e-4);
        prop_assert!((d1 - geometry::d_pb(&point, &b)).abs() < 1e-4);
        prop_assert!(d0 <= dh + 1e-5 && dh <= d1 + 1e-5);
    }

    /// The Max-Min intersection region is contained in every operand box.
    #[test]
    fn maxmin_intersection_contained(boxes in prop::collection::vec(box_strategy(), 1..5)) {
        let inter = BoxEmb::intersect_max_min(&boxes);
        let upper = inter.upper();
        let lower = inter.lower();
        // A degenerate (empty) intersection has zero width; its corners may
        // sit in the gap between boxes, so only check non-degenerate dims.
        for b in &boxes {
            let bu = b.upper();
            let bl = b.lower();
            for k in 0..DIM {
                if inter.off[k] > 0.0 {
                    prop_assert!(upper[k] <= bu[k] + 1e-4);
                    prop_assert!(lower[k] >= bl[k] - 1e-4);
                }
            }
        }
    }

    /// Intersection is idempotent: intersecting a box with itself gives the
    /// same region.
    #[test]
    fn maxmin_idempotent(b in box_strategy()) {
        let inter = BoxEmb::intersect_max_min(&[b.clone(), b.clone()]);
        for k in 0..DIM {
            prop_assert!((inter.upper()[k] - b.upper()[k]).abs() < 1e-5);
            prop_assert!((inter.lower()[k] - b.lower()[k]).abs() < 1e-5);
        }
    }

    /// D_BB is a pseudometric on boxes: symmetric, zero on identical boxes.
    #[test]
    fn d_bb_symmetric(a in box_strategy(), b in box_strategy()) {
        prop_assert!((geometry::d_bb(&a, &b) - geometry::d_bb(&b, &a)).abs() < 1e-4);
        prop_assert_eq!(geometry::d_bb(&a, &a), 0.0);
    }

    /// Projection through a zero relation box is the identity on the
    /// effective region.
    #[test]
    fn projection_by_zero_relation_is_identity(t in box_strategy()) {
        let zero = BoxEmb::new(vec![0.0; DIM], vec![0.0; DIM]);
        let p = t.project(&zero);
        for k in 0..DIM {
            prop_assert!((p.upper()[k] - t.upper()[k]).abs() < 1e-5);
            prop_assert!((p.lower()[k] - t.lower()[k]).abs() < 1e-5);
        }
    }

    /// top_k returns at most k items, all unmasked, in descending score
    /// order, with deterministic tie-breaks.
    #[test]
    fn top_k_properties(
        scores in prop::collection::vec(-10.0f32..10.0, 1..50),
        k in 1usize..25,
        mask_seed in 0u32..4,
    ) {
        let mask: Vec<ItemId> = (0..scores.len() as u32)
            .filter(|i| i % 4 == mask_seed)
            .map(ItemId)
            .collect();
        let top = top_k_masked(&scores, &mask, k);
        prop_assert!(top.len() <= k);
        prop_assert!(top.len() <= scores.len());
        for w in top.windows(2) {
            let (s0, s1) = (scores[w[0].index()], scores[w[1].index()]);
            prop_assert!(s0 > s1 || (s0 == s1 && w[0] < w[1]));
        }
        for i in &top {
            prop_assert!(mask.binary_search(i).is_err(), "masked item returned");
        }
    }

    /// recall and ndcg live in [0, 1]; perfect prefix ranking gives 1.
    #[test]
    fn metric_ranges(n_test in 1usize..10, n_top in 1usize..30) {
        let test_items: Vec<ItemId> = (0..n_test as u32).map(ItemId).collect();
        let top: Vec<ItemId> = (0..n_top as u32).map(ItemId).collect();
        let (recall, ndcg) = user_metrics(&top, &test_items);
        prop_assert!((0.0..=1.0).contains(&recall));
        prop_assert!((0.0..=1.0).contains(&ndcg));
        if n_top >= n_test {
            prop_assert!((recall - 1.0).abs() < 1e-12);
            prop_assert!((ndcg - 1.0).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tape point-to-box distance agrees with the plain-geometry one for
    /// arbitrary concepts and items of a freshly initialised model.
    #[test]
    fn tape_distance_matches_geometry(seed in 0u64..50, rel in 0u32..3, tag in 0u32..8, item in 0u32..10) {
        let sizes = UniverseSizes { n_items: 10, n_tags: 8, n_relations: 3, n_users: 2 };
        let cfg = InBoxConfig { seed, ..InBoxConfig::tiny_test() };
        let model = InBoxModel::new(sizes, &cfg);
        let concept = Concept::new(RelationId(rel), TagId(tag));
        let mut tape = inbox_repro::autodiff::Tape::new();
        let (cen, off) = model.concept_boxes(&mut tape, &[concept]);
        let b = TapeBox { cen, off };
        let pts = model.item_points(&mut tape, &[ItemId(item)]);
        let d = model.point_to_box(&mut tape, pts, b);
        let tape_val = tape.value(d).item();
        let plain = geometry::d_pb(model.item_point_f32(ItemId(item)), &model.concept_box_f32(concept));
        prop_assert!((tape_val - plain).abs() < 1e-4, "tape {tape_val} vs plain {plain}");
    }
}

use inbox_repro::testkit::{invariants, oracle};

proptest! {
    /// The testkit's scalar scoring oracle — an independent replica of the
    /// lane-striped reduction contract — agrees **bit-for-bit** with the
    /// geometry crate's SIMD `d_pb_weighted` kernel on the full matching
    /// formula, for arbitrary item tables and boxes, and to f32 rounding
    /// with the sequential `D_out`/`D_in` reference pair.
    #[test]
    fn oracle_scoring_matches_geometry_bitwise(
        items in prop::collection::vec(-3.0f32..3.0, 4 * DIM),
        b in box_strategy(),
    ) {
        let scores = oracle::score_items(&items, DIM, &b.cen, &b.off, 12.0, 0.5);
        for (r, score) in scores.iter().enumerate() {
            let p = &items[r * DIM..(r + 1) * DIM];
            let want = 12.0 - geometry::d_pb_weighted(p, &b, 0.5);
            prop_assert_eq!(
                score.to_bits(), want.to_bits(),
                "row {}: oracle {} vs geometry {}", r, score, want
            );
            let scalar = 12.0 - (geometry::d_out(p, &b) + 0.5 * geometry::d_in(p, &b));
            prop_assert!(
                (score - scalar).abs() <= 1e-4 * (1.0 + scalar.abs()),
                "row {}: oracle {} vs scalar reference {}", r, score, scalar
            );
        }
    }

    /// Max-Min intersection containment, exercised through the workspace
    /// facade so the root crate proves the testkit checkers are reachable
    /// from downstream code.
    #[test]
    fn maxmin_intersection_containment(
        raw in prop::collection::vec((vec_strategy(), vec_strategy()), 1..4),
    ) {
        let boxes: Vec<BoxEmb> = raw.into_iter().map(|(c, o)| BoxEmb::new(c, o)).collect();
        if let Err(msg) = invariants::check_maxmin_containment(&boxes) {
            return Err(proptest::test_runner::TestCaseError::fail(msg));
        }
    }

    /// Translating a point and its box together never moves the score
    /// beyond f32 rounding.
    #[test]
    fn score_translation_invariant(
        point in vec_strategy(),
        b in box_strategy(),
        t in vec_strategy(),
    ) {
        if let Err(msg) = invariants::check_translation_invariance(&point, &b, &t, 12.0, 1e-3) {
            return Err(proptest::test_runner::TestCaseError::fail(msg));
        }
    }
}
