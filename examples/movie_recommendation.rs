//! Movie recommendation on a hand-built knowledge graph — the paper's own
//! running example (Avatar, directed_by, James Cameron).
//!
//! We construct an explicit movie universe where every film has a director
//! and a genre, give each synthetic viewer a taste for one
//! (director, genre) *combination*, and check that InBox recommends held-out
//! films matching that combination — demonstrating that interests are
//! captured as intersections of concept boxes, not single tags.
//!
//! Run: `cargo run --release --example movie_recommendation`

use inbox_repro::core::{train, InBoxConfig};
use inbox_repro::data::{Dataset, Interactions};
use inbox_repro::kg::{Concept, ItemId, KgBuilder, TagId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIRECTORS: [&str; 4] = [
    "James Cameron",
    "Christopher Nolan",
    "Hayao Miyazaki",
    "Greta Gerwig",
];
const GENRES: [&str; 3] = ["sci-fi", "drama", "animation"];
const FILMS_PER_COMBO: usize = 8;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // ---- Knowledge graph -------------------------------------------------
    // Tags 0..4 = directors, 4..7 = genres. One film per (director, genre,
    // index) cell, so concept intersections are well populated.
    let n_items = DIRECTORS.len() * GENRES.len() * FILMS_PER_COMBO;
    let n_tags = DIRECTORS.len() + GENRES.len();
    let mut kg = KgBuilder::new(n_items, n_tags);
    let directed_by = kg.add_relation("directed_by");
    let has_genre = kg.add_relation("has_genre");
    let sequel_of = kg.add_relation("sequel_of");

    let film_id = |d: usize, g: usize, k: usize| {
        ItemId(((d * GENRES.len() + g) * FILMS_PER_COMBO + k) as u32)
    };
    for d in 0..DIRECTORS.len() {
        for g in 0..GENRES.len() {
            for k in 0..FILMS_PER_COMBO {
                let film = film_id(d, g, k);
                kg.add_irt(film, directed_by, TagId(d as u32)).unwrap();
                kg.add_irt(film, has_genre, TagId((DIRECTORS.len() + g) as u32))
                    .unwrap();
                if k > 0 {
                    // Avatar 2 is a sequel of Avatar: an IRI triple.
                    kg.add_iri(film, sequel_of, film_id(d, g, k - 1)).unwrap();
                }
            }
        }
    }
    let kg = kg.build();

    // ---- Viewers ---------------------------------------------------------
    // Each viewer loves one (director, genre) combination and watches most
    // of its films, plus a little noise.
    let n_users = 60;
    let mut pairs = Vec::new();
    let mut tastes = Vec::new();
    for u in 0..n_users {
        let d = rng.gen_range(0..DIRECTORS.len());
        let g = rng.gen_range(0..GENRES.len());
        tastes.push((d, g));
        for k in 0..FILMS_PER_COMBO {
            if rng.gen_bool(0.75) {
                pairs.push((UserId(u as u32), film_id(d, g, k)));
            }
        }
        let noise = ItemId(rng.gen_range(0..n_items) as u32);
        pairs.push((UserId(u as u32), noise));
    }
    let interactions = Interactions::from_pairs(n_users, n_items, pairs).unwrap();
    let (train_set, test_set) = interactions.split(0.25, &mut rng);
    let dataset = Dataset {
        name: "movies".into(),
        kg,
        train: train_set,
        test: test_set,
    };

    // ---- Train ------------------------------------------------------------
    println!(
        "training InBox on {} films, {} viewers ...",
        n_items, n_users
    );
    let trained = train(
        &dataset,
        InBoxConfig {
            epochs_stage1: 25,
            epochs_stage2: 15,
            epochs_stage3: 25,
            n_negatives: 16,
            lr: 1e-2,
            max_history: 16,
            ..InBoxConfig::for_dim(16)
        },
    );
    let metrics = trained.evaluate(&dataset, 10);
    println!(
        "recall@10 {:.3}, ndcg@10 {:.3}\n",
        metrics.recall, metrics.ndcg
    );

    // ---- Inspect a viewer ---------------------------------------------------
    let user = UserId(0);
    let (d, g) = tastes[0];
    println!(
        "viewer 0 loves {} {} films; top-5 recommendations:",
        DIRECTORS[d], GENRES[g]
    );
    let mut matching_top = 0;
    let recs = trained.recommend(user, dataset.train.items_of(user), 5);
    for (item, score) in &recs {
        let director_c = Concept::new(inbox_repro::kg::RelationId(0), TagId(d as u32));
        let genre_c = Concept::new(
            inbox_repro::kg::RelationId(1),
            TagId((DIRECTORS.len() + g) as u32),
        );
        let matches = dataset.kg.item_has_concept(*item, director_c)
            && dataset.kg.item_has_concept(*item, genre_c);
        if matches {
            matching_top += 1;
        }
        let combo = dataset
            .kg
            .concepts_of(*item)
            .iter()
            .map(|c| {
                let tag = c.tag.index();
                if tag < DIRECTORS.len() {
                    DIRECTORS[tag].to_string()
                } else {
                    GENRES[tag - DIRECTORS.len()].to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(" / ");
        println!(
            "  {item} [{combo}] score {score:.3}{}",
            if matches { "  <- taste match" } else { "" }
        );
    }
    println!(
        "\n{matching_top}/5 recommendations match the viewer's latent (director, genre) taste."
    );
}
