//! Ablation explorer: runs the paper's Table-3 ablations on a small dataset
//! and prints their relative effect — a miniature of the `table3` benchmark
//! binary that finishes in seconds.
//!
//! Run: `cargo run --release --example ablation_explorer`

use inbox_repro::core::{train, Ablation, InBoxConfig};
use inbox_repro::data::{Dataset, SyntheticConfig};

fn main() {
    let dataset = Dataset::synthetic(&SyntheticConfig::small(), 3);
    println!(
        "dataset `{}`: {} users, {} items, {} KG triples\n",
        dataset.name,
        dataset.n_users(),
        dataset.n_items(),
        dataset.kg_stats().n_triples()
    );

    let base_cfg = InBoxConfig {
        epochs_stage1: 25,
        epochs_stage2: 15,
        epochs_stage3: 20,
        n_negatives: 16,
        max_history: 24,
        lr: 1.5e-2,
        ..InBoxConfig::for_dim(16)
    };

    println!(
        "{:<12}{:>12}{:>12}{:>14}",
        "ablation", "recall@20", "ndcg@20", "vs Base"
    );
    let mut base_recall = None;
    // Run Base first so the deltas are available immediately.
    let mut rows: Vec<Ablation> = vec![Ablation::Base];
    rows.extend(
        Ablation::table3_rows()
            .into_iter()
            .filter(|a| *a != Ablation::Base),
    );
    for ablation in rows {
        let cfg = ablation.configure(base_cfg.clone());
        let trained = train(&dataset, cfg);
        let m = trained.evaluate(&dataset, 20);
        let delta = match base_recall {
            None => {
                base_recall = Some(m.recall);
                "—".to_string()
            }
            Some(base) => format!("{:+.1}%", 100.0 * (m.recall - base) / base),
        };
        println!(
            "{:<12}{:>12.4}{:>12.4}{:>14}",
            ablation.label(),
            m.recall,
            m.ndcg,
            delta
        );
    }
    println!("\nExpected shape (paper Table 3): `w/o B&I` collapses, `only userI` drops");
    println!("substantially, the other ablations degrade mildly.");
}
