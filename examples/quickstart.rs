//! Quickstart: generate a small concept-driven dataset, train InBox through
//! all three stages, evaluate with the paper's protocol, and print
//! recommendations with box-level explanations.
//!
//! Run: `cargo run --release --example quickstart`

use inbox_repro::core::interpret::{explain, format_explanation};
use inbox_repro::core::{train, InBoxConfig};
use inbox_repro::data::{Dataset, SyntheticConfig};
use inbox_repro::kg::UserId;

fn main() {
    // 1. Data: 40 users, 120 items, a small KG. User behaviour is generated
    //    from latent interests that are *intersections of KG concepts* —
    //    exactly the structure InBox is built to exploit.
    let dataset = Dataset::synthetic(&SyntheticConfig::tiny(), 42);
    println!(
        "dataset `{}`: {} users, {} items, {} KG triples",
        dataset.name,
        dataset.n_users(),
        dataset.n_items(),
        dataset.kg_stats().n_triples()
    );

    // 2. Train the three stages (basic pretraining -> box intersection ->
    //    interest-box recommendation).
    let config = InBoxConfig {
        epochs_stage1: 10,
        epochs_stage2: 10,
        epochs_stage3: 12,
        ..InBoxConfig::tiny_test()
    };
    println!(
        "\ntraining InBox (d={}, gamma={}) ...",
        config.dim, config.gamma
    );
    let trained = train(&dataset, config);
    println!(
        "stage losses: B {:.3} -> {:.3}, I {:.3} -> {:.3}, R {:.3} -> {:.3}",
        trained.report.stage1_losses.first().unwrap(),
        trained.report.stage1_losses.last().unwrap(),
        trained.report.stage2_losses.first().unwrap(),
        trained.report.stage2_losses.last().unwrap(),
        trained.report.stage3_losses.first().unwrap(),
        trained.report.stage3_losses.last().unwrap(),
    );

    // 3. Evaluate with the all-ranking protocol (Section 4.1.2).
    let metrics = trained.evaluate(&dataset, 20);
    println!("\ntest metrics: {metrics}");

    // 4. Recommend for one user and explain the top hit geometrically.
    let user = UserId(0);
    let seen = dataset.train.items_of(user);
    println!(
        "\nuser {user} interacted with {} items; top-5 recommendations:",
        seen.len()
    );
    for (item, score) in trained.recommend(user, seen, 5) {
        let hit = if dataset.test.contains(user, item) {
            "  <- in test set!"
        } else {
            ""
        };
        println!("  {item}  score {score:.3}{hit}");
    }

    let (top_item, _) = trained.recommend(user, seen, 1)[0];
    if let Some(ex) = explain(&trained, &dataset.kg, user, top_item) {
        println!(
            "\nwhy {top_item}?\n{}",
            format_explanation(&ex, &dataset.kg)
        );
    }
}
