//! Item cold start — the introduction's motivation for KG-enhanced
//! recommendation: brand-new items have *no* interaction history, so
//! collaborative filtering cannot rank them, but their KG concepts place
//! them inside the right interest boxes immediately.
//!
//! We train InBox and MF-BPR on the same dataset from which a slice of
//! "new" items' interactions were entirely removed, then measure how often
//! each model can surface a new item that matches a user's interests.
//!
//! Run: `cargo run --release --example cold_start`

use inbox_repro::baselines::{MfBpr, MfConfig};
use inbox_repro::core::{train, InBoxConfig};
use inbox_repro::data::{Dataset, Interactions, SyntheticConfig};
use inbox_repro::eval::Scorer;
use inbox_repro::kg::{ItemId, UserId};

fn main() {
    // Generate, then freeze the last 15% of items as "cold": strip every
    // interaction with them from BOTH splits; their KG triples remain.
    let base = Dataset::synthetic(&SyntheticConfig::small(), 13);
    let n_items = base.n_items();
    let cold_from = (n_items as f64 * 0.85) as u32;
    let is_cold = |i: ItemId| i.0 >= cold_from;

    let strip = |inter: &Interactions, keep_cold: bool| {
        let pairs: Vec<(UserId, ItemId)> = inter
            .pairs()
            .filter(|&(_, i)| keep_cold || !is_cold(i))
            .collect();
        Interactions::from_pairs(inter.n_users(), n_items, pairs).unwrap()
    };
    let dataset = Dataset {
        name: "small-coldstart".into(),
        kg: base.kg.clone(),
        train: strip(&base.train, false),
        // Test set: ONLY interactions with cold items (the ones CF can't see).
        test: {
            let pairs: Vec<(UserId, ItemId)> = base
                .train
                .pairs()
                .chain(base.test.pairs())
                .filter(|&(_, i)| is_cold(i))
                .collect();
            Interactions::from_pairs(base.n_users(), n_items, pairs).unwrap()
        },
    };
    let n_cold = (n_items as u32 - cold_from) as usize;
    println!(
        "{} items total, {} cold (never interacted in training); {} held-out cold interactions",
        n_items,
        n_cold,
        dataset.test.n_interactions()
    );

    // InBox: cold items still live in the KG, so stages 1-2 position their
    // points inside their concept boxes.
    println!("\ntraining InBox ...");
    let trained = train(
        &dataset,
        InBoxConfig {
            epochs_stage1: 25,
            epochs_stage2: 15,
            epochs_stage3: 20,
            n_negatives: 16,
            max_history: 24,
            lr: 1.5e-2,
            ..InBoxConfig::for_dim(16)
        },
    );
    let inbox = trained.evaluate(&dataset, 20);

    println!("training MF-BPR ...");
    let mf = MfBpr::fit(
        &dataset.train,
        &MfConfig {
            dim: 16,
            epochs: 40,
            ..Default::default()
        },
    );
    let mf_m = inbox_repro::eval::evaluate_with_threads(&mf, &dataset.train, &dataset.test, 20, 1);

    println!("\ncold-item recall@20 / ndcg@20:");
    println!("  InBox   {:.4} / {:.4}", inbox.recall, inbox.ndcg);
    println!("  MF-BPR  {:.4} / {:.4}", mf_m.recall, mf_m.ndcg);
    if mf_m.recall > 0.0 {
        println!(
            "\nInBox surfaces cold items {:.1}x better than pure CF —",
            inbox.recall / mf_m.recall
        );
    } else {
        println!("\nInBox surfaces cold items while pure CF finds none —");
    }
    println!("MF has never seen them, while the KG places their points inside");
    println!("the concept boxes that form matching users' interest boxes.");

    // Show one concrete case: a user whose top-20 contains a cold item.
    'outer: for u in 0..dataset.n_users() as u32 {
        let user = UserId(u);
        if dataset.test.items_of(user).is_empty() {
            continue;
        }
        for (item, score) in trained.recommend(user, dataset.train.items_of(user), 20) {
            if is_cold(item) && dataset.test.contains(user, item) {
                println!("\nexample: user {user} gets never-seen {item} at score {score:.3} (a true cold hit)");
                let mf_scores = mf.score_items(user);
                let better = mf_scores
                    .iter()
                    .enumerate()
                    .filter(|&(j, &s)| {
                        s > mf_scores[item.index()]
                            && !dataset.train.contains(user, ItemId(j as u32))
                    })
                    .count();
                println!("         MF ranks the same item #{better} of {n_items}.");
                break 'outer;
            }
        }
    }
}
