//! Fashion outfit discovery — the paper's Figure 1 story: a shopper who
//! wants a *crimson prom gown* has an interest that is the **intersection**
//! of three basic concepts: `color=red`, `occasion=prom`, `category=dress`.
//!
//! This example builds an Alibaba-iFashion-style catalogue, trains InBox,
//! and shows the box algebra at work: the shopper's interest box sits inside
//! the Max-Min intersection of the three concept boxes, and the top
//! recommendations carry all three attributes.
//!
//! Run: `cargo run --release --example fashion_outfits`

use inbox_repro::core::geometry::{d_pb_weighted, BoxEmb};
use inbox_repro::core::{train, InBoxConfig};
use inbox_repro::data::{Dataset, Interactions};
use inbox_repro::kg::{Concept, ItemId, KgBuilder, TagId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const COLORS: [&str; 4] = ["red", "black", "white", "blue"];
const OCCASIONS: [&str; 3] = ["prom", "office", "beach"];
const CATEGORIES: [&str; 3] = ["dress", "heels", "jacket"];
const PER_CELL: usize = 5;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // ---- Catalogue: one garment per (color, occasion, category, k) -------
    let n_items = COLORS.len() * OCCASIONS.len() * CATEGORIES.len() * PER_CELL;
    let n_tags = COLORS.len() + OCCASIONS.len() + CATEGORIES.len();
    let mut kg = KgBuilder::new(n_items, n_tags);
    let has_color = kg.add_relation("has_color");
    let for_occasion = kg.add_relation("for_occasion");
    let category = kg.add_relation("category");
    let item_id = |c: usize, o: usize, g: usize, k: usize| {
        ItemId((((c * OCCASIONS.len() + o) * CATEGORIES.len() + g) * PER_CELL + k) as u32)
    };
    let color_tag = |c: usize| TagId(c as u32);
    let occasion_tag = |o: usize| TagId((COLORS.len() + o) as u32);
    let category_tag = |g: usize| TagId((COLORS.len() + OCCASIONS.len() + g) as u32);
    for c in 0..COLORS.len() {
        for o in 0..OCCASIONS.len() {
            for g in 0..CATEGORIES.len() {
                for k in 0..PER_CELL {
                    let item = item_id(c, o, g, k);
                    kg.add_irt(item, has_color, color_tag(c)).unwrap();
                    kg.add_irt(item, for_occasion, occasion_tag(o)).unwrap();
                    kg.add_irt(item, category, category_tag(g)).unwrap();
                }
            }
        }
    }
    let kg = kg.build();

    // ---- Shoppers: each wants one (color, occasion, category) combo ------
    let n_users = 80;
    let mut pairs = Vec::new();
    let mut wants = Vec::new();
    for u in 0..n_users {
        let (c, o, g) = (
            rng.gen_range(0..COLORS.len()),
            rng.gen_range(0..OCCASIONS.len()),
            rng.gen_range(0..CATEGORIES.len()),
        );
        wants.push((c, o, g));
        for k in 0..PER_CELL {
            if rng.gen_bool(0.8) {
                pairs.push((UserId(u as u32), item_id(c, o, g, k)));
            }
        }
        // Browsing noise: related items sharing two of the three attributes.
        let o2 = (o + 1) % OCCASIONS.len();
        pairs.push((
            UserId(u as u32),
            item_id(c, o2, g, rng.gen_range(0..PER_CELL)),
        ));
    }
    let interactions = Interactions::from_pairs(n_users, n_items, pairs).unwrap();
    let (train_set, test_set) = interactions.split(0.3, &mut rng);
    let dataset = Dataset {
        name: "fashion".into(),
        kg,
        train: train_set,
        test: test_set,
    };

    println!("training InBox on {n_items} garments, {n_users} shoppers ...");
    let trained = train(
        &dataset,
        InBoxConfig {
            epochs_stage1: 25,
            epochs_stage2: 15,
            epochs_stage3: 25,
            n_negatives: 16,
            lr: 1e-2,
            max_history: 16,
            ..InBoxConfig::for_dim(16)
        },
    );
    let metrics = trained.evaluate(&dataset, 10);
    println!(
        "recall@10 {:.3}, ndcg@10 {:.3}\n",
        metrics.recall, metrics.ndcg
    );

    // ---- The Figure-1 story, measured -------------------------------------
    // Find a shopper who wants a red prom dress; fall back to shopper 0's
    // actual combination otherwise.
    let shopper = wants
        .iter()
        .position(|&(c, o, g)| {
            COLORS[c] == "red" && OCCASIONS[o] == "prom" && CATEGORIES[g] == "dress"
        })
        .unwrap_or(0);
    let (c, o, g) = wants[shopper];
    let user = UserId(shopper as u32);
    println!(
        "shopper {shopper} wants: {} {} {}",
        COLORS[c], OCCASIONS[o], CATEGORIES[g]
    );

    // Concept boxes and their Max-Min intersection (Eq. (17)-(20)).
    let concepts = [
        Concept::new(has_color, color_tag(c)),
        Concept::new(for_occasion, occasion_tag(o)),
        Concept::new(category, category_tag(g)),
    ];
    let boxes: Vec<BoxEmb> = concepts
        .iter()
        .map(|&cc| trained.model.concept_box_f32(cc))
        .collect();
    let inter = BoxEmb::intersect_max_min(&boxes);
    println!(
        "concept box L1 sizes: color {:.2}, occasion {:.2}, category {:.2} -> intersection {:.2}",
        boxes[0].l1_size(),
        boxes[1].l1_size(),
        boxes[2].l1_size(),
        inter.l1_size()
    );

    // Do items matching ALL THREE concepts sit closer to the intersection
    // than items matching only one?
    let alpha = trained.config.inside_weight;
    let full_match = item_id(c, o, g, 0);
    let partial = item_id(c, (o + 1) % OCCASIONS.len(), (g + 1) % CATEGORIES.len(), 0);
    println!(
        "distance to intersection: full match {:.3} vs partial match {:.3}",
        d_pb_weighted(trained.model.item_point_f32(full_match), &inter, alpha),
        d_pb_weighted(trained.model.item_point_f32(partial), &inter, alpha),
    );

    println!("\ntop-5 recommendations:");
    let mut full_matches = 0;
    for (item, score) in trained.recommend(user, dataset.train.items_of(user), 5) {
        let attrs: Vec<String> = dataset
            .kg
            .concepts_of(item)
            .iter()
            .map(|cc| {
                let t = cc.tag.index();
                if t < COLORS.len() {
                    COLORS[t].into()
                } else if t < COLORS.len() + OCCASIONS.len() {
                    OCCASIONS[t - COLORS.len()].into()
                } else {
                    CATEGORIES[t - COLORS.len() - OCCASIONS.len()].to_string()
                }
            })
            .collect();
        let is_full = concepts
            .iter()
            .all(|&cc| dataset.kg.item_has_concept(item, cc));
        if is_full {
            full_matches += 1;
        }
        println!(
            "  {item} [{}] score {score:.3}{}",
            attrs.join(" "),
            if is_full {
                "  <- all three concepts"
            } else {
                ""
            }
        );
    }
    println!("\n{full_matches}/5 recommendations carry all three wanted attributes.");
}
