//! Offline stand-in for `parking_lot` (see `vendor/README.md`), wrapping the
//! std synchronisation primitives with parking_lot's ergonomics: `lock()` /
//! `read()` / `write()` return guards directly, and poisoning is swallowed
//! (a poisoned std lock yields its inner guard, matching parking_lot's
//! no-poisoning semantics).

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock that hands out guards without a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard released on drop; dereferences to the protected value.
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock that hands out guards without a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard.
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard.
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared read access is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Blocks until exclusive write access is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_mutate() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_concurrent_readers_and_writer() {
        let l = Arc::new(RwLock::new(vec![1u32]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..100 {
                        let _ = l.read().len();
                    }
                });
            }
            let l = Arc::clone(&l);
            s.spawn(move || {
                for i in 0..100 {
                    l.write().push(i);
                }
            });
        });
        assert_eq!(l.read().len(), 101);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn const_new_in_static() {
        static COUNTER: Mutex<u64> = Mutex::new(0);
        *COUNTER.lock() += 1;
        assert!(*COUNTER.lock() >= 1);
    }
}
