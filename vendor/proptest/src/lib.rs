//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Keeps the property-test *surface* — `proptest!`, strategy combinators,
//! `prop_assert*` — over a much smaller engine: each test runs a fixed
//! number of deterministically seeded random cases (seeded from the test's
//! module path, so runs are reproducible and case streams differ per test).
//!
//! Deliberate simplifications versus upstream:
//! - **No shrinking.** A failing case reports its index and message; rerun
//!   the test to reproduce it (same seed, same stream).
//! - **Strategies are samplers.** [`strategy::Strategy`] is just
//!   "generate one value from an RNG"; there is no value tree.
//! - **String "regexes" support only `[class]{m,n}`** — the one shape this
//!   workspace uses. Anything else panics at generation time.

#![warn(missing_docs)]

pub use rand::rngs::StdRng;

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};

    /// A generator of values for property tests.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy so heterogeneous ones can be unioned.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between strategies (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: Clone,
        std::ops::Range<T>: SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: Clone,
        std::ops::RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// Generation from the `[class]{m,n}` regex subset.
mod string {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates a string matching `[class]{m,n}`; panics on any pattern
    /// outside that subset so an unsupported test fails loudly.
    pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let (alphabet, min, max) = parse(pattern)
            .unwrap_or_else(|| panic!("proptest stand-in supports only `[class]{{m,n}}` string patterns, got `{pattern}`"));
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }

    fn parse(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class = &rest[..close];
        let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (min_s, max_s) = rep.split_once(',')?;
        let min: usize = min_s.trim().parse().ok()?;
        let max: usize = max_s.trim().parse().ok()?;
        if min > max {
            return None;
        }

        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = match chars[i] {
                '\\' => {
                    i += 1;
                    match chars.get(i)? {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '\\' => '\\',
                        ']' => ']',
                        '-' => '-',
                        other => *other,
                    }
                }
                c => c,
            };
            // A `-` between two chars denotes a range (e.g. `a-z`).
            if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() {
                let hi = chars[i + 2];
                for v in (c as u32)..=(hi as u32) {
                    alphabet.push(char::from_u32(v)?);
                }
                i += 3;
            } else {
                alphabet.push(c);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        Some((alphabet, min, max))
    }

    #[cfg(test)]
    mod tests {
        use rand::SeedableRng;

        #[test]
        fn pattern_bounds_and_alphabet() {
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            for _ in 0..200 {
                let s = super::generate_from_pattern("[ 0-9a-z\\n]{0,20}", &mut rng);
                assert!(s.chars().count() <= 20);
                for c in s.chars() {
                    assert!(
                        c == ' ' || c == '\n' || c.is_ascii_digit() || c.is_ascii_lowercase(),
                        "unexpected char {c:?}"
                    );
                }
            }
            let s = super::generate_from_pattern("[ab]{3,3}", &mut rng);
            assert_eq!(s.len(), 3);
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive-min / exclusive-max element-count range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range for collection strategy");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the `proptest!` macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the stand-in trades a little coverage
            // for suite latency. Override per-test with `with_cases`.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Upstream distinguishes rejects from failures; the stand-in treats
        /// both as failures (no test here rejects).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Drives the cases of one property test.
    pub struct TestRunner {
        cases: u32,
        rng: StdRng,
    }

    impl TestRunner {
        /// Builds a runner whose RNG stream is derived from `name`, so each
        /// test gets its own reproducible stream.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a keeps the seed stable across runs and compilers.
            let mut seed = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            TestRunner {
                cases: config.cases,
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// How many cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The case RNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn` body runs for many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&$strat, runner.rng()),)+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {case} of {} failed: {e}\n\
                         (offline stand-in: no shrinking; rerun reproduces the same stream)",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

/// Like `assert!` but fails only the current case, with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Like `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 10u32..20)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn map_union_and_vec_compose(
            v in crate::collection::vec(
                prop_oneof![
                    (0u32..5).prop_map(|x| x * 2),
                    (10u32..15).prop_map(|x| x * 2),
                ],
                0..12,
            ),
            p in pair(),
        ) {
            prop_assert!(v.len() < 12);
            for x in &v {
                prop_assert_eq!(x % 2, 0);
                prop_assert!((*x < 10) || (20..30).contains(x));
            }
            prop_assert_ne!(p.0, p.1, "halves overlap: {:?}", p);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let config = ProptestConfig::with_cases(5);
        let mut runner = TestRunner::new(config, "demo");
        let mut failed = false;
        for _ in 0..runner.cases() {
            let x = Strategy::generate(&(0u32..100), runner.rng());
            let outcome: Result<(), TestCaseError> = (|| {
                prop_assert!(x < 101);
                prop_assert!(x < 50, "x too big: {}", x);
                Ok(())
            })();
            if outcome.is_err() {
                failed = true;
            }
        }
        assert!(failed, "expected at least one of 5 cases to exceed 50");
    }
}
