//! Offline stand-in for the `rand` crate, API-compatible with the subset the
//! workspace uses (see `vendor/README.md` for why this exists).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`Rng`] extension trait with `gen_range` / `gen_bool` / `gen`, the
//! [`SeedableRng`] constructor trait, and [`seq::SliceRandom`] with
//! Fisher–Yates `shuffle` and `choose`.
//!
//! The generated streams are *not* bit-identical to upstream `rand 0.8`
//! (upstream `StdRng` is ChaCha12), but every consumer in this workspace
//! treats the RNG as an opaque deterministic sampler, so only statistical
//! quality and in-process reproducibility matter. Both hold: xoshiro256++
//! passes BigCrush, and seeding is fully deterministic.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds an RNG from a nondeterministic OS-ish seed. The stand-in
    /// derives it from the system clock — adequate for the few callers that
    /// want "any seed".
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly (the argument of `gen_range`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` (Lemire's method
/// without the correction loop would be biased; keep the loop).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Extension methods every RNG gets (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }

    /// One uniform value of `T` (`f32`/`f64` in `[0,1)`, full domain ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        Standard::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// The RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (mirror of `rand::seq`).
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Commonly imported names (mirror of `rand::prelude`).
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u32> = (0..8).map(|_| a.gen_range(0..1000u32)).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen_range(0..1000u32)).collect();
        let zs: Vec<u32> = (0..8).map(|_| c.gen_range(0..1000u32)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = rng.gen_range(5..17usize);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(3..=9u32);
            assert!((3..=9).contains(&i));
            let s = rng.gen_range(-4i64..-1);
            assert!((-4..-1).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 rate off: {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice sorted");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn uniform_mean_reasonable() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean {mean}");
    }
}
