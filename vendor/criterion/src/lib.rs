//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Keeps the bench-definition surface (`criterion_group!`/`criterion_main!`,
//! `Criterion`, groups, `BenchmarkId`, `black_box`) but replaces the
//! statistical engine with a single timed batch per benchmark: warm up a few
//! iterations, time a fixed batch, print mean time per iteration. That is
//! enough to (a) keep the bench targets compiling and running under
//! `cargo test`/`cargo bench`, and (b) give coarse relative numbers.
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` targets), each closure runs once with no timing.

#![warn(missing_docs)]

use std::time::Instant;

/// Opaque value barrier preventing the optimiser from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Label for one parameterised benchmark case.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Label `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs the measured routine.
pub struct Bencher {
    smoke: bool,
}

const WARMUP_ITERS: u32 = 3;
const MEASURE_ITERS: u32 = 20;

impl Bencher {
    /// Times `routine`, printing mean wall-clock per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            black_box(routine());
            return;
        }
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        let per_iter = start.elapsed() / MEASURE_ITERS;
        print!("{per_iter:>12.2?}/iter ... ");
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Benchmarks `f` against one input value under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&label, |b| f(b));
        self
    }

    /// Ends the group (upstream finalises reports here; nothing to do).
    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let smoke = smoke_mode();
        print!("bench {label:<40} ... ");
        let mut b = Bencher { smoke };
        f(&mut b);
        println!("ok");
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, |b| f(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        for n in [2u64, 4] {
            group.bench_with_input(BenchmarkId::new("pow", n), &n, |b, &n| {
                b.iter(|| n.pow(3))
            });
        }
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
        let v = vec![1, 2, 3];
        assert_eq!(black_box(&v), &v);
    }
}
