//! Offline stand-in for `serde`, shaped around a concrete JSON-like value
//! tree instead of upstream's visitor architecture (see `vendor/README.md`).
//!
//! [`Serialize`] renders a type into a [`value::Value`]; [`Deserialize`]
//! rebuilds the type from one. The `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from `serde_derive`) cover named-field structs,
//! tuple/newtype structs, and unit-variant enums — the only shapes this
//! workspace serialises. `serde_json` turns the value tree into JSON text
//! and back.
//!
//! The simplification is deliberate: the upstream data-model traits exist to
//! decouple formats from types without an intermediate tree; here JSON is the
//! only format, so the tree costs one allocation pass and removes the need
//! for a visitor framework and code-generation of `impl`s against it.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// The dynamic value tree all (de)serialisation goes through.
pub mod value {
    use std::collections::{BTreeMap, HashMap};

    /// A JSON number: integers keep full 64-bit precision.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Number {
        /// Unsigned integer.
        U64(u64),
        /// Negative integer (always < 0; non-negatives normalise to `U64`).
        I64(i64),
        /// Floating point.
        F64(f64),
    }

    impl Number {
        /// Value as `f64` (lossy for very large integers).
        pub fn as_f64(self) -> f64 {
            match self {
                Number::U64(v) => v as f64,
                Number::I64(v) => v as f64,
                Number::F64(v) => v,
            }
        }

        /// Value as `u64` if representable.
        pub fn as_u64(self) -> Option<u64> {
            match self {
                Number::U64(v) => Some(v),
                Number::I64(v) => u64::try_from(v).ok(),
                Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                    Some(v as u64)
                }
                Number::F64(_) => None,
            }
        }

        /// Value as `i64` if representable.
        pub fn as_i64(self) -> Option<i64> {
            match self {
                Number::U64(v) => i64::try_from(v).ok(),
                Number::I64(v) => Some(v),
                Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                    Some(v as i64)
                }
                Number::F64(_) => None,
            }
        }
    }

    /// An object: field order is preserved so output is stable and readable.
    #[derive(Debug, Clone, PartialEq, Default)]
    pub struct Map {
        entries: Vec<(String, Value)>,
    }

    impl Map {
        /// An empty object.
        pub fn new() -> Self {
            Self::default()
        }

        /// Appends (or replaces) a field.
        pub fn insert(&mut self, key: impl Into<String>, value: Value) {
            let key = key.into();
            if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
            } else {
                self.entries.push((key, value));
            }
        }

        /// Looks a field up by name.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        /// Number of fields.
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        /// True when the object has no fields.
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        /// Iterates fields in insertion order.
        pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
            self.entries.iter().map(|(k, v)| (k, v))
        }
    }

    /// A dynamically typed JSON-like value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number.
        Number(Number),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object.
        Object(Map),
    }

    impl Value {
        /// Human label of the value's kind, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Number(_) => "number",
                Value::String(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }

        /// The object, if this is one.
        pub fn as_object(&self) -> Option<&Map> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The array, if this is one.
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The string, if this is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The number as `f64`, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(n.as_f64()),
                _ => None,
            }
        }
    }

    impl From<HashMap<String, Value>> for Map {
        fn from(m: HashMap<String, Value>) -> Self {
            let mut entries: Vec<(String, Value)> = m.into_iter().collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Map { entries }
        }
    }

    impl From<BTreeMap<String, Value>> for Map {
        fn from(m: BTreeMap<String, Value>) -> Self {
            Map {
                entries: m.into_iter().collect(),
            }
        }
    }
}

use value::{Map, Number, Value};

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }

    /// Standard missing-field error.
    pub fn missing_field(name: &str) -> Self {
        DeError(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the value does not fit.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -----------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| DeError::custom(format!(
                            "number out of range for {}", stringify!($t)
                        ))),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| DeError::custom(format!(
                            "number out of range for {}", stringify!($t)
                        ))),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(DeError::custom(format!(
                        "expected array of {LEN}, found {}", items.len()
                    ))),
                    other => Err(DeError::expected("array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert(k.clone(), v.serialize());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.serialize());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f32::deserialize(&1.5f32.serialize()).unwrap(), 1.5);
        assert_eq!(bool::deserialize(&true.serialize()).unwrap(), true);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::deserialize(&vec![1u8, 2].serialize()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            Option::<u8>::deserialize(&None::<u8>.serialize()).unwrap(),
            None
        );
        let pair = ("k".to_string(), 3u32);
        assert_eq!(
            <(String, u32)>::deserialize(&pair.serialize()).unwrap(),
            pair
        );
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u32::deserialize(&Value::Bool(true)).is_err());
        assert!(bool::deserialize(&Value::Null).is_err());
        assert!(String::deserialize(&1u8.serialize()).is_err());
        assert!(u8::deserialize(&300u32.serialize()).is_err());
        assert!(u64::deserialize(&(-1i32).serialize()).is_err());
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b", Value::Null);
        m.insert("a", Value::Bool(true));
        m.insert("b", Value::Bool(false));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Bool(false)));
        assert_eq!(m.len(), 2);
    }
}
