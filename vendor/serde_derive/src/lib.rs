//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! stand-in `serde` crate's `Value`-tree data model. The item is parsed
//! directly from the raw `TokenStream` (no `syn`/`quote`, which are not
//! available offline) and the generated `impl` is assembled as a string and
//! re-parsed. Supported shapes — the only ones this workspace derives:
//!
//! - structs with named fields (fields may carry `#[serde(default)]`)
//! - tuple structs (newtypes serialise transparently, wider ones as arrays)
//! - enums with unit variants (serialised as the variant name) and/or
//!   newtype variants (externally tagged: `{"Variant": <inner>}`)
//!
//! Anything else (generics, data-carrying enums, other `#[serde(...)]`
//! attributes) panics at expansion time with a clear message rather than
//! silently producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inserts = String::new();
            for f in fields {
                inserts.push_str(&format!(
                    "map.insert(\"{name}\", ::serde::Serialize::serialize(&self.{name}));\n",
                    name = f.name
                ));
            }
            format!(
                "let mut map = ::serde::value::Map::new();\n{inserts}\
                 ::serde::value::Value::Object(map)"
            )
        }
        Shape::TupleStruct(arity) => {
            if *arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v.kind {
                    VariantKind::Unit => format!(
                        "{ty}::{v} => ::serde::value::Value::String(\"{v}\".to_string())",
                        ty = item.name,
                        v = v.name,
                    ),
                    VariantKind::Newtype => format!(
                        "{ty}::{v}(inner) => {{\n\
                             let mut map = ::serde::value::Map::new();\n\
                             map.insert(\"{v}\", ::serde::Serialize::serialize(inner));\n\
                             ::serde::value::Value::Object(map)\n\
                         }}",
                        ty = item.name,
                        v = v.name,
                    ),
                })
                .collect();
            format!("match self {{ {} }}", arms.join(",\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("serde_derive stand-in: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fallback = if f.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!("return Err(::serde::DeError::missing_field(\"{}\"))", f.name)
                };
                inits.push_str(&format!(
                    "{name}: match obj.get(\"{name}\") {{\n\
                         Some(v) => ::serde::Deserialize::deserialize(v)?,\n\
                         None => {fallback},\n\
                     }},\n",
                    name = f.name
                ));
            }
            format!(
                "let obj = value.as_object()\
                     .ok_or_else(|| ::serde::DeError::expected(\"object\", value))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(arity) => {
            if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::deserialize(value)?))")
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = value.as_array()\
                         .ok_or_else(|| ::serde::DeError::expected(\"array\", value))?;\n\
                     if items.len() != {arity} {{\n\
                         return Err(::serde::DeError::custom(format!(\n\
                             \"expected array of {arity}, found {{}}\", items.len())));\n\
                     }}\n\
                     Ok({name}({elems}))",
                    elems = elems.join(", ")
                )
            }
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{v}\" => return Ok({name}::{v})", v = v.name))
                .collect();
            let newtype_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Newtype))
                .map(|v| {
                    format!(
                        "if let Some(inner) = obj.get(\"{v}\") {{\n\
                             return Ok({name}::{v}(::serde::Deserialize::deserialize(inner)?));\n\
                         }}",
                        v = v.name,
                    )
                })
                .collect();
            format!(
                "if let Some(s) = value.as_str() {{\n\
                     match s {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let Some(obj) = value.as_object() {{\n\
                     let _ = obj;\n\
                     {newtype_arms}\n\
                 }}\n\
                 Err(::serde::DeError::custom(format!(\n\
                     \"no variant of {name} matches {{}}\", value.kind())))",
                unit_arms = unit_arms
                    .iter()
                    .map(|a| format!("{a},"))
                    .collect::<String>(),
                newtype_arms = newtype_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::value::Value)\
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stand-in: generated Deserialize impl failed to parse")
}

// ---- item parsing --------------------------------------------------------

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Newtype,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = expect_any_ident(&tokens, &mut pos);
    let name = expect_any_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!(
                "serde stand-in derive: unsupported struct body for `{name}`: {other:?}"
            ),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("serde stand-in derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde stand-in derive: expected struct or enum, found `{other}`"),
    };

    Item { name, shape }
}

/// Skips `#[...]` attribute sequences, returning whether any of them was
/// `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut has_default = false;
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
            if is_serde_attr(g.stream(), "default") {
                has_default = true;
            } else if is_serde_attr_any(g.stream()) {
                panic!(
                    "serde stand-in derive: unsupported #[serde(...)] attribute: {}",
                    g.stream()
                );
            }
            *pos += 1;
        }
    }
    has_default
}

fn is_serde_attr_any(attr: TokenStream) -> bool {
    let mut iter = attr.into_iter();
    matches!(iter.next(), Some(TokenTree::Ident(i)) if i.to_string() == "serde")
}

fn is_serde_attr(attr: TokenStream, arg: &str) -> bool {
    let mut iter = attr.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) => g.stream().to_string() == arg,
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_any_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde stand-in derive: expected identifier, found {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let default = skip_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = expect_any_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!(
                "serde stand-in derive: expected `:` after field `{name}`, found {other:?}"
            ),
        }
        // Consume the type: commas nested in `<...>` belong to the type, only
        // an angle-depth-zero comma separates fields. (Commas inside tuples
        // or fn-pointer args arrive pre-grouped in a `(...)` token.)
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(pos) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (i, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if i + 1 == tokens.len() {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        let name = expect_any_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_tuple_fields(g.stream()) != 1 {
                    panic!(
                        "serde stand-in derive: enum `{enum_name}` variant `{name}` has \
                         multiple fields, which is unsupported"
                    );
                }
                pos += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde stand-in derive: enum `{enum_name}` variant `{name}` has named \
                 fields, which is unsupported"
            ),
            _ => VariantKind::Unit,
        };
        match tokens.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            other => panic!(
                "serde stand-in derive: unexpected token after variant \
                 `{enum_name}::{name}`: {other:?}"
            ),
        }
        variants.push(Variant { name, kind });
    }
    variants
}
