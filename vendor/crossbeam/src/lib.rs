//! Offline stand-in for `crossbeam` (see `vendor/README.md`), backed by
//! `std::thread::scope`. Only the scoped-thread surface this workspace uses
//! is provided.
//!
//! One deliberate deviation: upstream passes `&Scope` back into each spawned
//! closure so workers can spawn nested threads. Every call site here ignores
//! that argument (`|_|`), so the stand-in hands a copyable [`thread::NestedScope`]
//! placeholder instead, which sidesteps re-borrowing the scope across the
//! spawn boundary. A closure that actually used the argument to spawn would
//! fail to compile — loudly, not wrongly.

#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Boxed payload of a panicked thread, as `std::thread::Result` uses.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Placeholder passed to spawned closures where upstream passes `&Scope`.
    #[derive(Clone, Copy, Debug)]
    pub struct NestedScope;

    /// A scope handle on which worker threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker; it may borrow from the enclosing scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.0.spawn(move || f(NestedScope)))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. A panic in an unjoined worker propagates as a panic (upstream
    /// returns `Err` instead; call sites here `.expect()` either way).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut out = vec![0u64; data.len()];
        super::thread::scope(|s| {
            for (src, dst) in data.chunks(3).zip(out.chunks_mut(3)) {
                s.spawn(move |_| {
                    for (a, b) in src.iter().zip(dst.iter_mut()) {
                        *b = a * 10;
                    }
                });
            }
        })
        .expect("worker panicked");
        assert_eq!(out, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn handles_return_values() {
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64).map(|i| s.spawn(move |_| i * i)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("worker panicked");
        assert_eq!(total, 0 + 1 + 4 + 9);
    }
}
