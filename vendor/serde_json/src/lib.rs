//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Serialises through the stand-in `serde` crate's [`Value`] tree: printing
//! walks the tree, parsing builds one with a recursive-descent parser, and
//! `from_str` finishes with `Deserialize::deserialize` on the parsed tree.
//! Covers the JSON grammar this workspace emits (no `\u` escapes beyond
//! what `escape` produces are *written*, but all standard escapes are read).

#![warn(missing_docs)]

pub use serde::value::Value;
use serde::value::{Map, Number};
use serde::{Deserialize, Serialize};

/// Error from parsing or mapping JSON onto a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// A JSON parse/serialise result.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialises `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text and maps it onto `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

/// Maps a [`Value`] tree onto `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::deserialize(value)?)
}

// ---- printing ------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => {
            // `{}` on f64 prints the shortest representation that round-trips,
            // but drops the decimal point for integral values; keep ".0" so
            // the token stays a float on re-read.
            let s = format!("{v}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        // JSON has no NaN/Infinity literal; upstream errors here, we emit
        // null which deserialises as an error for non-Option targets.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{kw}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| {
                                Error::new(format!("invalid \\u escape at byte {}", self.pos))
                            })?);
                            continue;
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "invalid escape at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::new(format!("invalid \\u escape `{hex}`")))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-4i64).unwrap(), "-4");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("-2.5e2").unwrap(), -250.0);
        assert_eq!(from_str::<String>("\"a\\u0041\"").unwrap(), "aA");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f32), (3, 4.0)];
        let text = to_string(&v).unwrap();
        let back: Vec<(u32, f32)> = from_str(&text).unwrap();
        assert_eq!(back, v);

        let opt: Vec<Option<u32>> = vec![Some(1), None];
        let text = to_string(&opt).unwrap();
        assert_eq!(text, "[1,null]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&text).unwrap(), opt);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&text).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<bool>("truu").is_err());
    }

    #[test]
    fn nonfinite_floats_serialise_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").is_err());
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }
}
